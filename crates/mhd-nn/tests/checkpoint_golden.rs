//! Golden-file test for the checkpoint container format.
//!
//! The committed `tests/golden/tiny.ckpt` pins the on-disk layout: magic,
//! version, meta block, name-sorted tensor directory, 64-byte aligned
//! payloads, trailing FNV-1a checksum. Re-serializing the same logical
//! content must reproduce it byte for byte — any format change shows up
//! here as a diff, forcing a deliberate schema-version bump.
//!
//! To regenerate after an intentional format change:
//! `cargo test -p mhd-nn --test checkpoint_golden -- --ignored regen`
//! (then review the diff and bump `checkpoint::VERSION`).

use mhd_nn::checkpoint::{Checkpoint, CheckpointError, Writer};

const GOLDEN_PATH: &str = "tests/golden/tiny.ckpt";

/// The fixed logical content of the golden checkpoint. Tensors are added
/// in non-sorted order on purpose: serialization must sort them.
fn golden_writer() -> Writer {
    let mut w = Writer::new();
    w.meta("zoo.kind", "golden");
    w.meta("zoo.note", "pinned by checkpoint_golden.rs");
    w.tensor_f32("m/w", 2, 3, &[0.5, -1.25, 2.0, 0.0, 3.5, -0.125]);
    w.tensor_i8("m/q", 1, 5, &[-127, -1, 0, 1, 127]);
    w.tensor_f32("a/bias", 1, 2, &[1.0, -1.0]);
    w
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn serialization_is_byte_stable_against_golden_file() {
    let committed = std::fs::read(golden_path()).expect("golden file committed");
    let fresh = golden_writer().to_bytes();
    assert_eq!(
        fresh, committed,
        "checkpoint serialization drifted from the committed golden file; \
         if the format change is intentional, bump checkpoint::VERSION and \
         regenerate with `cargo test -p mhd-nn --test checkpoint_golden -- --ignored regen`"
    );
    // And again: repeated serialization of one Writer is stable too.
    assert_eq!(golden_writer().to_bytes(), fresh);
}

#[test]
fn golden_file_loads_and_roundtrips() {
    let bytes = std::fs::read(golden_path()).expect("golden file committed");
    let ck = Checkpoint::from_bytes(bytes).expect("golden checkpoint parses");
    assert_eq!(ck.meta("zoo.kind"), Some("golden"));
    assert_eq!(ck.n_tensors(), 3);
    // Directory is name-sorted regardless of insertion order.
    assert_eq!(ck.names().collect::<Vec<_>>(), vec!["a/bias", "m/q", "m/w"]);
    let (rows, cols, w) = ck.tensor_f32("m/w").expect("m/w present");
    assert_eq!((rows, cols), (2, 3));
    assert_eq!(w, vec![0.5, -1.25, 2.0, 0.0, 3.5, -0.125]);
    let (rows, cols, q) = ck.tensor_i8("m/q").expect("m/q present");
    assert_eq!((rows, cols), (1, 5));
    assert_eq!(q, vec![-127, -1, 0, 1, 127]);
}

#[test]
fn corrupted_golden_bytes_error_instead_of_panicking() {
    let bytes = std::fs::read(golden_path()).expect("golden file committed");

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert_eq!(Checkpoint::from_bytes(bad).unwrap_err(), CheckpointError::BadMagic);

    // Truncation at every interesting boundary. Cuts shorter than
    // magic+checksum report Truncated/BadMagic; longer cuts surface as a
    // checksum mismatch (the checksum is validated before the directory).
    for cut in [0, 4, 7, 8, 12, bytes.len() / 2, bytes.len() - 1] {
        let err = Checkpoint::from_bytes(bytes[..cut].to_vec()).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Truncated
                    | CheckpointError::BadMagic
                    | CheckpointError::ChecksumMismatch
            ),
            "cut at {cut}: {err:?}"
        );
    }

    // Any payload bit flip breaks the trailing checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert_eq!(
        Checkpoint::from_bytes(flipped).unwrap_err(),
        CheckpointError::ChecksumMismatch
    );
}

/// Regenerates the golden file. Ignored in normal runs; only for
/// intentional format changes.
#[test]
#[ignore = "writes the golden file; run explicitly after a format change"]
fn regen() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    std::fs::write(&path, golden_writer().to_bytes()).expect("write golden");
}
