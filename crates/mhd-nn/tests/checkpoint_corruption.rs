//! Corruption-rejection property tests for the checkpoint container.
//!
//! The contract this pins: flipping **any single byte** of a valid
//! checkpoint — header, metadata, directory, payload, padding, or the
//! trailing checksum — must surface as a typed [`CheckpointError`] from
//! both readers. Never a panic, and never a silently-wrong tensor:
//! a flip that somehow parses must still reproduce the original tensor
//! bytes exactly (which the FNV-1a trailing checksum makes impossible
//! for the checksum-covered body).

use mhd_nn::checkpoint::{Checkpoint, CheckpointError, Writer};
use proptest::prelude::*;

/// A small but structurally complete checkpoint: metadata, an f32
/// tensor, an i8 tensor, alignment padding, checksum.
fn sample_bytes() -> Vec<u8> {
    let mut w = Writer::new();
    w.meta("arch", "mlp");
    w.meta("dim", "16");
    w.tensor_f32("layer0/w", 3, 4, &[0.5f32; 12]);
    w.tensor_f32("layer0/b", 1, 4, &[-1.0, 0.0, 1.0, 2.5]);
    w.tensor_i8("layer0/q", 2, 4, &[-127, -1, 0, 1, 2, 3, 64, 127]);
    w.to_bytes()
}

/// Every error a flipped byte may legally produce. `Malformed` and the
/// rest can only appear if the flip lands where validation runs before
/// the checksum — for this container that is the magic and the length
/// prefix, both still typed.
fn is_typed_rejection(e: &CheckpointError) -> bool {
    matches!(
        e,
        CheckpointError::BadMagic
            | CheckpointError::ChecksumMismatch
            | CheckpointError::Truncated
            | CheckpointError::UnsupportedVersion(_)
            | CheckpointError::Malformed(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-byte flips anywhere in the container are rejected with a
    /// typed error by the owning loader.
    #[test]
    fn single_byte_flip_rejected_by_load(pos in 0usize..4096, bit in 0u8..8) {
        let good = sample_bytes();
        let mut bad = good.clone();
        let at = pos % bad.len();
        bad[at] ^= 1 << bit;
        match Checkpoint::from_bytes(bad) {
            Ok(_) => prop_assert!(false, "flip at {at} bit {bit} accepted"),
            Err(e) => prop_assert!(is_typed_rejection(&e), "flip at {at}: untyped {e}"),
        }
    }

    /// The mapped (serving-side) loader applies identical validation: a
    /// flipped file is rejected before any shard can share the buffer.
    #[test]
    fn single_byte_flip_rejected_by_map(pos in 0usize..4096, bit in 0u8..8) {
        let good = sample_bytes();
        let mut bad = good.clone();
        let at = pos % bad.len();
        bad[at] ^= 1 << bit;
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "mhd_nn_flip_map_{}_{at}_{bit}.ckpt",
            std::process::id()
        ));
        std::fs::write(&path, &bad).expect("write corrupted file");
        let res = Checkpoint::map(&path);
        let _ = std::fs::remove_file(&path);
        match res {
            Ok(_) => prop_assert!(false, "flip at {at} bit {bit} accepted by map"),
            Err(e) => prop_assert!(is_typed_rejection(&e), "flip at {at}: untyped {e}"),
        }
    }

    /// Truncation at any length is likewise a typed rejection — the
    /// shape a torn write would have without the atomic rename.
    #[test]
    fn any_truncation_rejected(cut in 0usize..4096) {
        let good = sample_bytes();
        let cut = cut % good.len();
        match Checkpoint::from_bytes(good[..cut].to_vec()) {
            Ok(_) => prop_assert!(false, "truncation at {cut} accepted"),
            Err(e) => prop_assert!(is_typed_rejection(&e), "cut at {cut}: untyped {e}"),
        }
    }
}

/// Non-property sanity check: the untouched container still parses and
/// round-trips its tensors (so the flips above fail for the right
/// reason, not because the sample is invalid).
#[test]
fn pristine_sample_parses() {
    let ck = Checkpoint::from_bytes(sample_bytes()).expect("pristine parse");
    assert_eq!(ck.n_tensors(), 3);
    let (r, c, b) = ck.tensor_f32("layer0/b").expect("bias");
    assert_eq!((r, c), (1, 4));
    assert_eq!(b, vec![-1.0, 0.0, 1.0, 2.5]);
}
