//! Property tests for the batched GEMM kernels and the batched training
//! paths built on them.
//!
//! Two contracts from the kernel layer's design:
//!
//! 1. every tiled kernel is **bit-identical** to a loop over the scalar
//!    `linalg` reference, across odd shapes that do not divide the tile
//!    size (so edge-tile code paths are exercised);
//! 2. batched `train_batch` reproduces the per-example reference path's
//!    outputs byte-for-byte at 1 and N worker threads — the determinism
//!    guarantee the byte-reproducible report relies on.

use mhd_nn::gemm::{colsum_acc, gemm_nn, gemm_nt, gemm_tn};
use mhd_nn::linalg::{affine, affine_backward_input, affine_backward_params};
use mhd_nn::{Encoder, LoraAdapter, Mlp};
use mhd_nn::encoder::EncoderConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filled(rng: &mut StdRng, len: usize, zero_every: usize) -> Vec<f32> {
    (0..len)
        .map(|i| if zero_every > 0 && i % zero_every == 0 { 0.0 } else { rng.gen_range(-2.0..2.0f32) })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// gemm_nt ≡ affine, row by row, at any (odd) shape.
    #[test]
    fn gemm_nt_bit_identical_to_affine(
        seed in 0u64..10_000,
        m in 1usize..9,
        k in 1usize..70,
        n in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = filled(&mut rng, m * k, 0);
        let w = filled(&mut rng, n * k, 0);
        let bias = filled(&mut rng, n, 0);
        let mut out = vec![0.0f32; m * n];
        gemm_nt(&a, &w, Some(&bias), m, k, n, &mut out);
        let mut reference = vec![0.0f32; m * n];
        for e in 0..m {
            affine(&w, &bias, &a[e * k..(e + 1) * k], n, k, &mut reference[e * n..(e + 1) * n]);
        }
        let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let rb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ob, rb);
    }

    /// gemm_nn ≡ affine_backward_input (zero-skip included).
    #[test]
    fn gemm_nn_bit_identical_to_backward_input(
        seed in 0u64..10_000,
        m in 1usize..9,
        k in 1usize..40,
        n in 1usize..40,
        zero_every in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = filled(&mut rng, m * k, zero_every);
        let w = filled(&mut rng, k * n, 0);
        let mut out = vec![0.0f32; m * n];
        gemm_nn(&d, &w, m, k, n, &mut out, true);
        let mut reference = vec![0.0f32; m * n];
        for e in 0..m {
            affine_backward_input(&w, &d[e * k..(e + 1) * k], k, n, &mut reference[e * n..(e + 1) * n]);
        }
        let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let rb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ob, rb);
    }

    /// gemm_tn + colsum_acc ≡ affine_backward_params over stacked
    /// examples, including accumulation *on top of* non-zero grads.
    #[test]
    fn gemm_tn_bit_identical_to_backward_params(
        seed in 0u64..10_000,
        rows in 1usize..40,
        m in 1usize..20,
        n in 1usize..40,
        zero_every in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = filled(&mut rng, rows * m, zero_every);
        let x = filled(&mut rng, rows * n, 0);
        let init = filled(&mut rng, m * n, 0);
        let initb = filled(&mut rng, m, 0);
        let mut wgrad = init.clone();
        let mut bgrad = initb.clone();
        gemm_tn(&d, &x, rows, m, n, &mut wgrad, true);
        colsum_acc(&d, rows, m, &mut bgrad);
        let mut refw = init;
        let mut refb = initb;
        for e in 0..rows {
            affine_backward_params(
                &mut refw, &mut refb,
                &d[e * m..(e + 1) * m], &x[e * n..(e + 1) * n],
                m, n,
            );
        }
        let wb: Vec<u32> = wgrad.iter().map(|v| v.to_bits()).collect();
        let rwb: Vec<u32> = refw.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(wb, rwb);
        let bb: Vec<u32> = bgrad.iter().map(|v| v.to_bits()).collect();
        let rbb: Vec<u32> = refb.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bb, rbb);
    }
}

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new().num_threads(n).build_global().expect("pool config");
}

fn proba_bits(ps: &[Vec<f32>]) -> Vec<u32> {
    ps.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
}

/// Batched training must reproduce the per-example reference byte-for-byte
/// at 1 and 8 worker threads, for all three model families. One test
/// function owns the global pool so the configurations cannot race.
#[test]
fn batched_training_matches_reference_at_any_thread_count() {
    let mut rng = StdRng::seed_from_u64(77);

    // Mlp data.
    let mlp_xs: Vec<Vec<f32>> =
        (0..37).map(|_| (0..10).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect();
    let mlp_ys: Vec<usize> = (0..37).map(|i| i % 3).collect();

    // Encoder data: enough tokens to push the att_w gradient GEMM over
    // its parallel threshold is not feasible in a unit test, but the
    // chunk dispatch is shape-independent and covered by gemm_props.
    let docs: Vec<Vec<u32>> =
        (0..25).map(|i| (0..(1 + i % 12)).map(|t| ((i * 7 + t * 3) % 60) as u32).collect()).collect();
    let doc_ys: Vec<usize> = (0..25).map(|i| i % 2).collect();

    // LoRA data with exact zeros (skip paths).
    let lora_xs: Vec<Vec<f32>> = (0..29)
        .map(|i| {
            (0..12)
                .map(|j| if (i + j) % 4 == 0 { 0.0 } else { rng.gen_range(-1.0..1.0f32) })
                .collect()
        })
        .collect();
    let lora_ys: Vec<usize> = (0..29).map(|i| i % 4).collect();
    let base: Vec<f32> = (0..4 * 12).map(|_| rng.gen_range(-0.5..0.5f32)).collect();
    let bias: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.2..0.2f32)).collect();

    // Reference outputs, computed once on the per-example path (thread
    // count is irrelevant to it — it is fully serial).
    let mut mlp_ref = Mlp::new(10, 7, 3, 0.03, 5);
    let mut enc_ref = Encoder::new(EncoderConfig {
        vocab_size: 60,
        embed_dim: 12,
        hidden_dim: 10,
        n_classes: 2,
        max_len: 10,
        lr: 3e-3,
        seed: 6,
    });
    let mut lora_ref = LoraAdapter::new(base.clone(), bias.clone(), 4, 12, 3, 0.03, 7);
    let mut ref_losses = Vec::new();
    for _ in 0..3 {
        ref_losses.push(mlp_ref.train_batch_reference(&mlp_xs, &mlp_ys).to_bits());
        ref_losses.push(enc_ref.train_batch_reference(&docs, &doc_ys).to_bits());
        ref_losses.push(lora_ref.train_batch_reference(&lora_xs, &lora_ys).to_bits());
    }
    let ref_mlp_probs = proba_bits(&mlp_ref.predict_proba_batch(&mlp_xs));
    let ref_enc_probs = proba_bits(&enc_ref.predict_proba_batch(&docs));
    let ref_lora_out = proba_bits(&lora_ref.forward_batch(&lora_xs));

    for jobs in [1usize, 8] {
        set_jobs(jobs);
        let mut mlp = Mlp::new(10, 7, 3, 0.03, 5);
        let mut enc = Encoder::new(EncoderConfig {
            vocab_size: 60,
            embed_dim: 12,
            hidden_dim: 10,
            n_classes: 2,
            max_len: 10,
            lr: 3e-3,
            seed: 6,
        });
        let mut lora = LoraAdapter::new(base.clone(), bias.clone(), 4, 12, 3, 0.03, 7);
        let mut losses = Vec::new();
        for _ in 0..3 {
            losses.push(mlp.train_batch(&mlp_xs, &mlp_ys).to_bits());
            losses.push(enc.train_batch(&docs, &doc_ys).to_bits());
            losses.push(lora.train_batch(&lora_xs, &lora_ys).to_bits());
        }
        assert_eq!(losses, ref_losses, "losses diverged at jobs={jobs}");
        assert_eq!(
            proba_bits(&mlp.predict_proba_batch(&mlp_xs)),
            ref_mlp_probs,
            "mlp probabilities diverged at jobs={jobs}"
        );
        assert_eq!(
            proba_bits(&enc.predict_proba_batch(&docs)),
            ref_enc_probs,
            "encoder probabilities diverged at jobs={jobs}"
        );
        assert_eq!(
            proba_bits(&lora.forward_batch(&lora_xs)),
            ref_lora_out,
            "lora outputs diverged at jobs={jobs}"
        );
    }
}
