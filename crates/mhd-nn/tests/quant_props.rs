//! Property tests for the int8 quantization layer.
//!
//! Three contracts from the quantization scheme's design (per-row symmetric
//! scales, `q = clamp(round(v / s), -127, 127)`):
//!
//! 1. every row scale is strictly positive and finite, whatever the input
//!    (all-zero and non-finite rows fall back to scale 1.0);
//! 2. the round-trip error is bounded: `|dequant(quant(x)) - x| <= s / 2`
//!    per element for inputs inside the representable range;
//! 3. values at or beyond the row maximum saturate to ±127 — the i8 code
//!    point −128 is never produced, keeping negation safe.

use mhd_nn::quant::{quantize_rows, quantize_value, row_scale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filled(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-8.0..8.0f32)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scales are strictly positive and finite for arbitrary rows.
    #[test]
    fn scales_are_positive(seed in 0u64..10_000, cols in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let row = filled(&mut rng, cols);
        let s = row_scale(&row);
        prop_assert!(s > 0.0 && s.is_finite(), "scale {s} for row of {cols}");
    }

    /// All-zero rows get the 1.0 fallback scale instead of 0 (which would
    /// make dequantization divide by zero).
    #[test]
    fn zero_rows_fall_back_to_unit_scale(cols in 1usize..80) {
        let row = vec![0.0f32; cols];
        prop_assert_eq!(row_scale(&row), 1.0);
    }

    /// Per-element round-trip error is bounded by half the row scale.
    #[test]
    fn roundtrip_error_within_half_scale(
        seed in 0u64..10_000,
        rows in 1usize..6,
        cols in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = filled(&mut rng, rows * cols);
        let mut q = Vec::new();
        let mut scales = Vec::new();
        quantize_rows(&src, rows, cols, &mut q, &mut scales);
        prop_assert_eq!(q.len(), rows * cols);
        prop_assert_eq!(scales.len(), rows);
        for r in 0..rows {
            let s = scales[r];
            prop_assert!(s > 0.0 && s.is_finite());
            for c in 0..cols {
                let v = src[r * cols + c];
                let back = f32::from(q[r * cols + c]) * s;
                let err = (back - v).abs();
                // round() introduces at most half a step of error, and the
                // row maximum maps exactly onto ±127 so nothing clips.
                prop_assert!(
                    err <= s * 0.5 + 1e-6,
                    "row {r} col {c}: v={v} back={back} err={err} scale={s}"
                );
            }
        }
    }

    /// Values beyond the scale's representable range saturate at ±127;
    /// −128 never appears.
    #[test]
    fn saturation_clamps_to_plus_minus_127(
        v in -1.0e30f32..1.0e30,
        scale_exp in -20i32..20,
    ) {
        let scale = 2.0f32.powi(scale_exp);
        let q = quantize_value(v, scale);
        prop_assert!((-127..=127).contains(&i32::from(q)), "q={q}");
        if v / scale >= 127.5 {
            prop_assert_eq!(q, 127);
        }
        if v / scale <= -127.5 {
            prop_assert_eq!(q, -127);
        }
    }

    /// Quantizing a row never emits −128 even at the negative extreme
    /// (the symmetric scheme reserves it so `-q` cannot overflow).
    #[test]
    fn negative_extreme_maps_to_minus_127(
        seed in 0u64..10_000,
        cols in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = filled(&mut rng, cols);
        // Force the row maximum to be a negative value.
        let idx = rng.gen_range(0..cols);
        row[idx] = -1.0e4;
        let s = row_scale(&row);
        for &v in &row {
            let q = quantize_value(v, s);
            prop_assert!(q >= -127, "q={q} for v={v} s={s}");
        }
        prop_assert_eq!(quantize_value(row[idx], s), -127);
    }
}

/// Non-finite inputs quantize to something defined (NaN → 0 via the
/// saturating cast; infinities clamp) rather than poisoning the row.
#[test]
fn non_finite_values_are_contained() {
    assert_eq!(row_scale(&[f32::NAN, 1.0]), 1.0 / 127.0);
    assert_eq!(row_scale(&[f32::NAN]), 1.0, "all-non-finite row falls back");
    let s = 0.5f32;
    assert_eq!(quantize_value(f32::NAN, s), 0);
    assert_eq!(quantize_value(f32::INFINITY, s), 127);
    assert_eq!(quantize_value(f32::NEG_INFINITY, s), -127);
}
