//! One-hidden-layer softmax classifier over dense inputs.
//!
//! Training runs on the batched [`crate::gemm`] kernels: the minibatch is
//! packed into one row-major activation matrix and each layer is a single
//! GEMM, with gradients reduced in fixed example order so the result is
//! byte-identical to the per-example reference path
//! ([`Mlp::train_batch_reference`]) at any thread count.

use crate::checkpoint;
use crate::gemm::{self, pack_b_nt, pack_rows, Workspace};
use crate::linalg::{
    affine, affine_backward_input, affine_backward_params, relu_backward, relu_inplace, softmax,
    softmax_xent, softmax_xent_rows,
};
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// K-major packs of the weight matrices (see [`pack_b_nt`]), built
/// lazily on the first batched predict and reused until the next
/// optimizer step. This removes the f32 serving path's dominant
/// small-batch cost: repacking ~45 KB of weights on every call.
#[derive(Debug, Clone, Default)]
struct PackedWeights {
    /// `w1` packed `input_dim`-major (empty for linear models).
    w1t: Vec<f32>,
    /// `w2` packed over its input width (hidden, or input for linear).
    w2t: Vec<f32>,
}

/// A dense classifier: `input → [hidden ReLU] → logits → softmax`.
/// `hidden = 0` degenerates to multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct Mlp {
    input_dim: usize,
    hidden_dim: usize,
    n_classes: usize,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    opt: Adam,
    ws: Workspace,
    /// Serving-state cache: packed weights for the batched predict path.
    /// Invalidated (taken) by every optimizer step.
    packed: OnceLock<PackedWeights>,
}

impl Mlp {
    /// Create a classifier. `hidden = 0` means a linear model.
    pub fn new(input_dim: usize, hidden: usize, n_classes: usize, lr: f32, seed: u64) -> Self {
        assert!(input_dim > 0 && n_classes >= 2, "need inputs and ≥2 classes");
        let mut rng = StdRng::seed_from_u64(seed);
        let (w1, b1, w2, b2) = if hidden > 0 {
            (
                Tensor::xavier(hidden, input_dim, &mut rng),
                Tensor::zeros(1, hidden),
                Tensor::xavier(n_classes, hidden, &mut rng),
                Tensor::zeros(1, n_classes),
            )
        } else {
            (
                Tensor::zeros(0, 0),
                Tensor::zeros(0, 0),
                Tensor::xavier(n_classes, input_dim, &mut rng),
                Tensor::zeros(1, n_classes),
            )
        };
        let sizes = [w1.len(), b1.len(), w2.len(), b2.len()];
        Mlp {
            input_dim,
            hidden_dim: hidden,
            n_classes,
            w1,
            b1,
            w2,
            b2,
            opt: Adam::new(lr, &sizes),
            ws: Workspace::new(),
            packed: OnceLock::new(),
        }
    }

    /// Packed weights for the serving path, built on first use.
    fn packed(&self) -> &PackedWeights {
        self.packed.get_or_init(|| {
            let l2_in = if self.hidden_dim > 0 { self.hidden_dim } else { self.input_dim };
            PackedWeights {
                w1t: if self.hidden_dim > 0 {
                    pack_b_nt(&self.w1.data, self.input_dim, self.hidden_dim)
                } else {
                    Vec::new()
                },
                w2t: pack_b_nt(&self.w2.data, l2_in, self.n_classes),
            }
        })
    }

    /// Force the packed serving state to exist now (zoo startup calls
    /// this so the first request does not pay the pack).
    pub fn prepack(&self) {
        let _ = self.packed();
    }

    /// Class-probability forward pass.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        softmax(&self.logits(x).0)
    }

    /// Batched class-probability forward: one GEMM per layer over the
    /// whole slice of inputs. Bit-identical to mapping
    /// [`Mlp::predict_proba`] over the inputs.
    pub fn predict_proba_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let bsz = xs.len();
        let (n_in, h_dim, k) = (self.input_dim, self.hidden_dim, self.n_classes);
        for x in xs {
            assert_eq!(x.len(), n_in, "input dim mismatch");
        }
        let packed = self.packed();
        let mut ws = Workspace::new();
        let mut x = ws.zeros(bsz * n_in);
        pack_rows(xs, n_in, &mut x);
        let mut logits = ws.zeros(bsz * k);
        if h_dim > 0 {
            let mut h = ws.zeros(bsz * h_dim);
            let mut mask = ws.mask(bsz * h_dim);
            gemm::gemm_nt_relu_packed(
                &x,
                &packed.w1t,
                &self.b1.data,
                bsz,
                n_in,
                h_dim,
                &mut h,
                &mut mask,
            );
            gemm::gemm_nt_packed(&h, &packed.w2t, Some(&self.b2.data), bsz, h_dim, k, &mut logits);
        } else {
            gemm::gemm_nt_packed(&x, &packed.w2t, Some(&self.b2.data), bsz, n_in, k, &mut logits);
        }
        (0..bsz).map(|e| softmax(&logits[e * k..(e + 1) * k])).collect()
    }

    /// Most probable class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let p = self.predict_proba(x);
        argmax(&p)
    }

    fn logits(&self, x: &[f32]) -> (Vec<f32>, Option<HiddenCache>) {
        assert_eq!(x.len(), self.input_dim, "input dim mismatch");
        if self.hidden_dim > 0 {
            let mut h = vec![0.0; self.hidden_dim];
            affine(&self.w1.data, &self.b1.data, x, self.hidden_dim, self.input_dim, &mut h);
            let mut mask = Vec::new();
            relu_inplace(&mut h, &mut mask);
            let mut out = vec![0.0; self.n_classes];
            affine(&self.w2.data, &self.b2.data, &h, self.n_classes, self.hidden_dim, &mut out);
            (out, Some((h, mask)))
        } else {
            let mut out = vec![0.0; self.n_classes];
            affine(&self.w2.data, &self.b2.data, x, self.n_classes, self.input_dim, &mut out);
            (out, None)
        }
    }

    /// Accumulate gradients for one example; returns the loss.
    fn backward_example(&mut self, x: &[f32], gold: usize) -> f32 {
        let (logits, cache) = self.logits(x);
        let (loss, dlogits) = softmax_xent(&logits, gold);
        match cache {
            Some((h, mask)) => {
                affine_backward_params(
                    &mut self.w2.grad,
                    &mut self.b2.grad,
                    &dlogits,
                    &h,
                    self.n_classes,
                    self.hidden_dim,
                );
                let mut dh = vec![0.0; self.hidden_dim];
                affine_backward_input(&self.w2.data, &dlogits, self.n_classes, self.hidden_dim, &mut dh);
                relu_backward(&mut dh, &mask);
                affine_backward_params(
                    &mut self.w1.grad,
                    &mut self.b1.grad,
                    &dh,
                    x,
                    self.hidden_dim,
                    self.input_dim,
                );
            }
            None => {
                affine_backward_params(
                    &mut self.w2.grad,
                    &mut self.b2.grad,
                    &dlogits,
                    x,
                    self.n_classes,
                    self.input_dim,
                );
            }
        }
        loss
    }

    /// Train on one mini-batch via the batched GEMM path; returns mean
    /// loss. Byte-identical to [`Mlp::train_batch_reference`].
    pub fn train_batch(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty batch");
        let bsz = xs.len();
        let (n_in, h_dim, k) = (self.input_dim, self.hidden_dim, self.n_classes);
        for x in xs {
            assert_eq!(x.len(), n_in, "input dim mismatch");
        }
        let mut x = self.ws.zeros(bsz * n_in);
        pack_rows(xs, n_in, &mut x);
        let total = if h_dim > 0 {
            let mut h = self.ws.zeros(bsz * h_dim);
            let mut mask = self.ws.mask(bsz * h_dim);
            gemm::gemm_nt_relu(&x, &self.w1.data, &self.b1.data, bsz, n_in, h_dim, &mut h, &mut mask);
            let mut logits = self.ws.zeros(bsz * k);
            gemm::gemm_nt(&h, &self.w2.data, Some(&self.b2.data), bsz, h_dim, k, &mut logits);
            let total = softmax_xent_rows(&mut logits, k, ys);
            let dl = logits; // rows now hold dlogits
            gemm::gemm_tn(&dl, &h, bsz, k, h_dim, &mut self.w2.grad, true);
            gemm::colsum_acc(&dl, bsz, k, &mut self.b2.grad);
            let mut dh = self.ws.zeros(bsz * h_dim);
            gemm::gemm_nn(&dl, &self.w2.data, bsz, k, h_dim, &mut dh, true);
            relu_backward(&mut dh, &mask);
            gemm::gemm_tn(&dh, &x, bsz, h_dim, n_in, &mut self.w1.grad, true);
            gemm::colsum_acc(&dh, bsz, h_dim, &mut self.b1.grad);
            self.ws.recycle(h);
            self.ws.recycle(dl);
            self.ws.recycle(dh);
            self.ws.recycle_mask(mask);
            total
        } else {
            let mut logits = self.ws.zeros(bsz * k);
            gemm::gemm_nt(&x, &self.w2.data, Some(&self.b2.data), bsz, n_in, k, &mut logits);
            let total = softmax_xent_rows(&mut logits, k, ys);
            let dl = logits;
            gemm::gemm_tn(&dl, &x, bsz, k, n_in, &mut self.w2.grad, true);
            gemm::colsum_acc(&dl, bsz, k, &mut self.b2.grad);
            self.ws.recycle(dl);
            total
        };
        self.ws.recycle(x);
        self.apply_grads(bsz);
        total / bsz as f32
    }

    /// Per-example reference implementation of [`Mlp::train_batch`],
    /// kept as the bit-identity oracle for tests and benches.
    pub fn train_batch_reference(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty batch");
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            total += self.backward_example(x, y);
        }
        self.apply_grads(xs.len());
        total / xs.len() as f32
    }

    /// Mean-scale accumulated gradients and take one Adam step.
    fn apply_grads(&mut self, bsz: usize) {
        // Weights are about to change: drop the packed serving cache.
        let _ = self.packed.take();
        let scale = 1.0 / bsz as f32;
        for t in [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2] {
            for g in &mut t.grad {
                *g *= scale;
            }
        }
        let Mlp { w1, b1, w2, b2, opt, .. } = self;
        opt.step(&mut [w1, b1, w2, b2], Some(5.0));
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Quantize the trained weights into an int8 inference model
    /// (per-row symmetric scales, prepacked weights; see [`crate::quant`]).
    pub fn quantize(&self) -> crate::quant::QuantizedMlp {
        crate::quant::QuantizedMlp::from_parts(
            self.input_dim,
            self.hidden_dim,
            self.n_classes,
            &self.w1.data,
            &self.b1.data,
            &self.w2.data,
            &self.b2.data,
        )
    }

    /// Serialize the f32 parameters under `prefix` into a checkpoint
    /// writer (optimizer state is not persisted; a loaded model resumes
    /// with fresh Adam moments).
    pub fn write_checkpoint(&self, prefix: &str, w: &mut checkpoint::Writer) {
        w.meta(&format!("{prefix}.kind"), "mlp");
        w.meta(&format!("{prefix}.input_dim"), &checkpoint::usize_meta(self.input_dim));
        w.meta(&format!("{prefix}.hidden_dim"), &checkpoint::usize_meta(self.hidden_dim));
        w.meta(&format!("{prefix}.n_classes"), &checkpoint::usize_meta(self.n_classes));
        w.meta(&format!("{prefix}.lr"), &checkpoint::f32_meta(self.opt.lr));
        for (name, t) in
            [("w1", &self.w1), ("b1", &self.b1), ("w2", &self.w2), ("b2", &self.b2)]
        {
            w.tensor_f32(&format!("{prefix}/{name}"), t.rows, t.cols, &t.data);
        }
    }

    /// Deserialize a model written by [`Mlp::write_checkpoint`].
    pub fn from_checkpoint(
        ck: &checkpoint::Checkpoint,
        prefix: &str,
    ) -> Result<Mlp, checkpoint::CheckpointError> {
        let input_dim = ck.meta_usize(&format!("{prefix}.input_dim"))?;
        let hidden_dim = ck.meta_usize(&format!("{prefix}.hidden_dim"))?;
        let n_classes = ck.meta_usize(&format!("{prefix}.n_classes"))?;
        let lr = ck.meta_f32(&format!("{prefix}.lr"))?;
        let tensor = |name: &str| -> Result<Tensor, checkpoint::CheckpointError> {
            let (rows, cols, data) = ck.tensor_f32(&format!("{prefix}/{name}"))?;
            Ok(Tensor { rows, cols, grad: vec![0.0; data.len()], data })
        };
        let (w1, b1, w2, b2) = (tensor("w1")?, tensor("b1")?, tensor("w2")?, tensor("b2")?);
        let expected_l2_in = if hidden_dim > 0 { hidden_dim } else { input_dim };
        if w2.len() != n_classes * expected_l2_in
            || (hidden_dim > 0 && w1.len() != hidden_dim * input_dim)
        {
            return Err(checkpoint::CheckpointError::Malformed(
                "mlp tensor shape mismatch".to_string(),
            ));
        }
        let sizes = [w1.len(), b1.len(), w2.len(), b2.len()];
        Ok(Mlp {
            input_dim,
            hidden_dim,
            n_classes,
            w1,
            b1,
            w2,
            b2,
            opt: Adam::new(lr, &sizes),
            ws: Workspace::new(),
            packed: OnceLock::new(),
        })
    }
}

/// Cached hidden activations and ReLU mask from a forward pass.
type HiddenCache = (Vec<f32>, Vec<bool>);

/// Index of the maximum value (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian blobs; a linear model must separate them.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            xs.push(vec![center + rng.gen_range(-0.5..0.5), center + rng.gen_range(-0.5..0.5)]);
            ys.push(class);
        }
        (xs, ys)
    }

    #[test]
    fn linear_model_learns_blobs() {
        let (xs, ys) = blobs(200, 1);
        let mut m = Mlp::new(2, 0, 2, 0.05, 2);
        for _ in 0..50 {
            m.train_batch(&xs, &ys);
        }
        let acc = xs.iter().zip(&ys).filter(|(x, &y)| m.predict(x) == y).count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    /// XOR is not linearly separable: the hidden layer must earn its keep.
    #[test]
    fn hidden_layer_solves_xor() {
        let xs: Vec<Vec<f32>> =
            vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![0usize, 1, 1, 0];
        let mut m = Mlp::new(2, 16, 2, 0.05, 3);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            final_loss = m.train_batch(&xs, &ys);
        }
        assert!(final_loss < 0.1, "loss {final_loss}");
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(m.predict(x), y, "xor({x:?})");
        }
    }

    #[test]
    fn linear_model_cannot_solve_xor() {
        let xs: Vec<Vec<f32>> =
            vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![0usize, 1, 1, 0];
        let mut m = Mlp::new(2, 0, 2, 0.05, 3);
        for _ in 0..400 {
            m.train_batch(&xs, &ys);
        }
        let correct = xs.iter().zip(&ys).filter(|(x, &y)| m.predict(x) == y).count();
        assert!(correct < 4, "a linear model must not solve XOR perfectly");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = Mlp::new(3, 4, 5, 0.01, 4);
        let p = m.predict_proba(&[0.1, -0.2, 0.3]);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases() {
        let (xs, ys) = blobs(100, 9);
        let mut m = Mlp::new(2, 8, 2, 0.05, 10);
        let first = m.train_batch(&xs, &ys);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_batch(&xs, &ys);
        }
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "input dim")]
    fn dim_mismatch_panics() {
        let m = Mlp::new(3, 0, 2, 0.01, 1);
        m.predict(&[1.0]);
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9]), 1);
    }

    /// The tentpole contract: batched training is byte-identical to the
    /// per-example reference, for both hidden and linear variants, over
    /// several steps (so divergence cannot hide in optimizer state).
    #[test]
    fn batched_training_bit_identical_to_reference() {
        for hidden in [0usize, 13] {
            let (xs, ys) = blobs(57, 21); // odd batch size, off tile boundaries
            let mut batched = Mlp::new(2, hidden, 2, 0.03, 7);
            let mut reference = batched.clone();
            for step in 0..5 {
                let lb = batched.train_batch(&xs, &ys);
                let lr = reference.train_batch_reference(&xs, &ys);
                assert_eq!(lb.to_bits(), lr.to_bits(), "loss diverged at step {step}");
            }
            for (t, r) in [
                (&batched.w1, &reference.w1),
                (&batched.b1, &reference.b1),
                (&batched.w2, &reference.w2),
                (&batched.b2, &reference.b2),
            ] {
                let tb: Vec<u32> = t.data.iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = r.data.iter().map(|v| v.to_bits()).collect();
                assert_eq!(tb, rb, "weights diverged (hidden={hidden})");
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        for hidden in [0usize, 6] {
            let (xs, ys) = blobs(40, 8);
            let mut m = Mlp::new(2, hidden, 2, 0.05, 12);
            for _ in 0..10 {
                m.train_batch(&xs, &ys);
            }
            let mut w = checkpoint::Writer::new();
            m.write_checkpoint("mlp", &mut w);
            let ck = checkpoint::Checkpoint::from_bytes(w.to_bytes()).expect("parse");
            let loaded = Mlp::from_checkpoint(&ck, "mlp").expect("load");
            for x in &xs {
                let (a, b) = (m.predict_proba(x), loaded.predict_proba(x));
                let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "hidden={hidden}");
            }
        }
    }

    /// Quantized inference must track the f32 model closely on data the
    /// model separates confidently, and agree on nearly every argmax.
    #[test]
    fn quantized_mlp_tracks_f32() {
        let (xs, ys) = blobs(120, 13);
        let mut m = Mlp::new(2, 8, 2, 0.05, 14);
        for _ in 0..40 {
            m.train_batch(&xs, &ys);
        }
        let q = m.quantize();
        let pf = m.predict_proba_batch(&xs);
        let pq = q.predict_proba_batch(&xs);
        let mut max_delta = 0.0f32;
        let mut agree = 0usize;
        for (f, qq) in pf.iter().zip(&pq) {
            for (&a, &b) in f.iter().zip(qq) {
                max_delta = max_delta.max((a - b).abs());
            }
            if argmax(f) == argmax(qq) {
                agree += 1;
            }
        }
        assert!(max_delta < 0.05, "max per-class probability delta {max_delta}");
        assert!(agree * 100 >= xs.len() * 98, "argmax agreement {agree}/{}", xs.len());
        // Training accuracy must be preserved through quantization.
        let acc_f = xs.iter().zip(&ys).filter(|(x, &y)| m.predict(x) == y).count();
        let acc_q = xs.iter().zip(&ys).filter(|(x, &y)| q.predict(x) == y).count();
        assert!(
            (acc_f as i64 - acc_q as i64).abs() <= 2,
            "accuracy moved: f32 {acc_f} vs int8 {acc_q}"
        );
    }

    /// The packed-weight serving cache must never serve stale weights:
    /// predict (cache builds) → train (cache invalidates) → predict must
    /// equal a never-cached clone's output bit-for-bit.
    #[test]
    fn packed_cache_invalidated_by_training() {
        let (xs, ys) = blobs(48, 17);
        let mut m = Mlp::new(2, 6, 2, 0.05, 18);
        let _warm = m.predict_proba_batch(&xs); // builds the pack
        for _ in 0..5 {
            m.train_batch(&xs, &ys);
        }
        let cached = m.predict_proba_batch(&xs);
        for (x, row) in xs.iter().zip(&cached) {
            let single = m.predict_proba(x); // scalar path, no cache
            let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, rb, "stale packed weights served after training");
        }
    }

    #[test]
    fn predict_proba_batch_matches_per_example() {
        let (xs, ys) = blobs(40, 5);
        let mut m = Mlp::new(2, 6, 2, 0.05, 6);
        for _ in 0..10 {
            m.train_batch(&xs, &ys);
        }
        let batched = m.predict_proba_batch(&xs);
        for (x, row) in xs.iter().zip(&batched) {
            let single = m.predict_proba(x);
            let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, rb);
        }
    }
}
