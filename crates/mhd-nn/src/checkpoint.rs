//! Binary, memory-mappable model checkpoints.
//!
//! A deterministic little-endian container for the model zoo: write the
//! same tensors and you get the same bytes, byte for byte, on any
//! platform. Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic        8 B   "MHDCKPT\0"
//!        8   version      u32   container schema (currently 1)
//!       12   n_meta       u32
//!       16   n_tensors    u32
//!       20   meta entries, sorted by key:
//!              klen u32 · key bytes · vlen u32 · value bytes
//!        …   tensor directory, sorted by name:
//!              nlen u32 · name bytes · dtype u8 (0 = f32, 1 = i8)
//!              · rows u64 · cols u64 · offset u64 · byte_len u64
//!        …   zero padding to the next 64-byte boundary
//!        …   tensor payloads, each starting 64-byte aligned
//!  len − 8   checksum     u64   FNV-1a-64 of every preceding byte
//! ```
//!
//! Offsets in the directory are absolute file offsets, each a multiple
//! of 64, so a reader may take **zero-copy aligned views** straight into
//! the loaded buffer ([`Checkpoint::view`]) — no parse or copy cost
//! beyond the single sequential file read. The typed accessors
//! ([`Checkpoint::tensor_f32`] / [`Checkpoint::tensor_i8`]) decode a
//! payload in one bulk pass when an owned vector is wanted.
//!
//! Every failure mode (bad magic, unknown version, truncation, checksum
//! mismatch, missing/mistyped tensors) is a typed [`CheckpointError`] —
//! this module never panics on untrusted bytes (lint rule R2; pinned by
//! `tests/checkpoint_golden.rs`).

use mhd_fault::{Fault, FaultInjector, Site};
use mhd_obs::{counter_add, span, StatCell, StatTimer};
use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static T_CKPT_LOAD: StatCell = StatCell::new("nn.checkpoint.load");
static T_CKPT_MAP: StatCell = StatCell::new("nn.checkpoint.map");
static T_CKPT_SAVE: StatCell = StatCell::new("nn.checkpoint.save");

/// File magic, first 8 bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"MHDCKPT\0";
/// Container schema version written by [`Writer`].
pub const VERSION: u32 = 1;
/// Payload alignment: every tensor starts on a 64-byte boundary.
pub const ALIGN: usize = 64;

/// Element type of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// Little-endian IEEE-754 f32.
    F32,
    /// Signed 8-bit integer (quantized weights).
    I8,
}

impl DType {
    fn code(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::I8 => 1,
        }
    }

    fn from_code(c: u8) -> Option<DType> {
        match c {
            0 => Some(DType::F32),
            1 => Some(DType::I8),
            _ => None,
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }
}

/// Typed error for every way a checkpoint can fail to round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// Container version newer than this reader understands.
    UnsupportedVersion(u32),
    /// The buffer ends before a structure it promises.
    Truncated,
    /// Stored FNV-1a-64 does not match the bytes.
    ChecksumMismatch,
    /// A requested tensor name is absent.
    MissingTensor(String),
    /// A requested tensor exists with a different dtype.
    WrongDtype(String),
    /// A requested metadata key is absent or unparsable.
    BadMeta(String),
    /// Structurally invalid contents (misaligned payload, bad shape, …).
    Malformed(String),
    /// Underlying filesystem error.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::MissingTensor(n) => write!(f, "missing tensor `{n}`"),
            CheckpointError::WrongDtype(n) => write!(f, "tensor `{n}` has the wrong dtype"),
            CheckpointError::BadMeta(k) => write!(f, "missing or invalid metadata `{k}`"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit over a byte slice — small, dependency-free, and stable
/// across platforms; collision resistance is irrelevant here (the
/// checksum guards against corruption, not adversaries).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render an f32 for metadata: hex of the IEEE bits, so the round trip
/// is exact (decimal would drift).
pub fn f32_meta(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

/// Render a usize for metadata.
pub fn usize_meta(v: usize) -> String {
    format!("{v}")
}

/// Render a u64 for metadata.
pub fn u64_meta(v: u64) -> String {
    format!("{v}")
}

/// Accumulates metadata and tensors, then serialises the container.
/// Entry order does not matter: keys and names are sorted at
/// [`Writer::to_bytes`] time, which is what makes output deterministic.
#[derive(Debug, Default)]
pub struct Writer {
    meta: Vec<(String, String)>,
    tensors: Vec<(String, DType, usize, usize, Vec<u8>)>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Add a metadata key/value pair.
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Add an f32 tensor (row-major `rows × cols`).
    pub fn tensor_f32(&mut self, name: &str, rows: usize, cols: usize, data: &[f32]) {
        debug_assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.tensors.push((name.to_string(), DType::F32, rows, cols, bytes));
    }

    /// Add an i8 tensor (row-major `rows × cols`).
    pub fn tensor_i8(&mut self, name: &str, rows: usize, cols: usize, data: &[i8]) {
        debug_assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        let bytes: Vec<u8> = data.iter().map(|&v| v as u8).collect();
        self.tensors.push((name.to_string(), DType::I8, rows, cols, bytes));
    }

    /// Serialise the container. Deterministic: same entries → same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = self.meta.clone();
        meta.sort_by(|a, b| a.0.cmp(&b.0));
        let mut order: Vec<usize> = (0..self.tensors.len()).collect();
        order.sort_by(|&a, &b| self.tensors[a].0.cmp(&self.tensors[b].0));

        // Pass 1: size of everything before the payloads.
        let mut head_len = MAGIC.len() + 4 + 4 + 4;
        for (k, v) in &meta {
            head_len += 4 + k.len() + 4 + v.len();
        }
        for &i in &order {
            let (name, ..) = &self.tensors[i];
            head_len += 4 + name.len() + 1 + 8 + 8 + 8 + 8;
        }
        // Pass 2: assign aligned payload offsets.
        let mut offsets = vec![0u64; self.tensors.len()];
        let mut cursor = head_len.next_multiple_of(ALIGN);
        for &i in &order {
            offsets[i] = cursor as u64;
            cursor += self.tensors[i].4.len().next_multiple_of(ALIGN);
        }

        let mut out = Vec::with_capacity(cursor + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for (k, v) in &meta {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        for &i in &order {
            let (name, dtype, rows, cols, bytes) = &self.tensors[i];
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(dtype.code());
            out.extend_from_slice(&(*rows as u64).to_le_bytes());
            out.extend_from_slice(&(*cols as u64).to_le_bytes());
            out.extend_from_slice(&offsets[i].to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        }
        out.resize(head_len.next_multiple_of(ALIGN), 0);
        for &i in &order {
            debug_assert_eq!(out.len() as u64, offsets[i]);
            let bytes = &self.tensors[i].4;
            out.extend_from_slice(bytes);
            out.resize(out.len().next_multiple_of(ALIGN), 0);
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Serialise and write to `path` **atomically**: the bytes go to a
    /// sibling temp file first and are `rename`d into place, so a crash
    /// mid-write can never leave a torn `.ckpt` at the target — readers
    /// observe either the old file or the complete new one.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let _t = StatTimer::start(&T_CKPT_SAVE);
        let _s = span("checkpoint.save");
        let bytes = self.to_bytes();
        counter_add("checkpoint.bytes_written", bytes.len() as u64);
        // Unique sibling name (same directory, so the rename is not
        // cross-filesystem): pid + a process-wide counter, no clock/RNG.
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
        let file_name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let file_name = file_name.unwrap_or_else(|| "checkpoint".to_string());
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, &bytes).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CheckpointError::Io(e.to_string())
        })
    }
}

/// One entry of the tensor directory.
#[derive(Debug, Clone)]
struct DirEntry {
    name: String,
    dtype: DType,
    rows: usize,
    cols: usize,
    offset: usize,
    byte_len: usize,
}

/// A zero-copy view of one tensor's payload inside a loaded checkpoint.
/// `bytes` points into the checkpoint's buffer at a 64-byte-aligned
/// offset; no per-element work has been done.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a> {
    /// Element type.
    pub dtype: DType,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Raw little-endian payload, `rows·cols·dtype.size()` bytes.
    pub bytes: &'a [u8],
}

impl<'a> TensorView<'a> {
    /// Element count (`rows · cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the payload as little-endian f32s, lazily — the borrowing
    /// load path streams these straight into kernel-ready layouts (packed
    /// weight panels, i16 quant lanes) without materialising an
    /// intermediate `Vec`. Meaningful only when `dtype` is [`DType::F32`]
    /// (the checked accessor is [`Checkpoint::view_f32`]).
    pub fn f32_iter(&self) -> impl Iterator<Item = f32> + 'a {
        let (chunks, _) = self.bytes.as_chunks::<4>();
        chunks.iter().map(|c| f32::from_le_bytes(*c))
    }

    /// Decode the payload as i8s, lazily. Meaningful only when `dtype`
    /// is [`DType::I8`] (the checked accessor is [`Checkpoint::view_i8`]).
    pub fn i8_iter(&self) -> impl Iterator<Item = i8> + 'a {
        self.bytes.iter().map(|&b| b as i8)
    }
}

/// A loaded, validated checkpoint: the raw buffer plus its parsed
/// metadata and tensor directory (both name-sorted).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    buf: Vec<u8>,
    meta: Vec<(String, String)>,
    dir: Vec<DirEntry>,
}

/// A checkpoint mapped into the serving process: **one** validated
/// buffer, reference-counted and shared read-only by every holder.
///
/// This is the serving-side loader the container's 64-byte-aligned
/// payloads were designed for. [`Checkpoint::map`] performs a single
/// sequential read + validation; cloning a `MappedCheckpoint` is an
/// `Arc` bump, so a shard pool shares the mapped bytes instead of each
/// shard re-reading (or re-copying) the zoo. All tensor access goes
/// through the zero-copy [`Checkpoint::view`] family borrowing directly
/// from the shared buffer.
///
/// # Lifetime rules (mmap discipline, safe Rust)
///
/// The workspace forbids `unsafe`, so this is not an OS `mmap(2)` — a
/// true page mapping needs `unsafe` to reinterpret mapped pages as
/// typed slices. What it preserves is mmap's *borrowing discipline*:
///
/// * the buffer is immutable for its whole life — no accessor can
///   mutate it, so concurrent shard reads need no synchronisation;
/// * [`TensorView`]s borrow the buffer (`&'ck [u8]`), so the borrow
///   checker proves no view outlives the mapping — the failure mode an
///   OS mmap turns into a use-after-unmap fault;
/// * models built from views decode payload bytes exactly once, in one
///   pass, straight into kernel-ready state (packed f32 panels, i16
///   quant lanes) with no intermediate tensor materialisation;
/// * the mapping is released when the last clone drops, never while a
///   shard still serves from it.
#[derive(Debug, Clone)]
pub struct MappedCheckpoint {
    inner: Arc<Checkpoint>,
}

impl Deref for MappedCheckpoint {
    type Target = Checkpoint;

    fn deref(&self) -> &Checkpoint {
        &self.inner
    }
}

impl MappedCheckpoint {
    /// Number of handles (shards + zoo) currently sharing the mapping.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

/// Apply any scheduled [`Site::CheckpointRead`] fault to a freshly read
/// buffer: a transient I/O fault aborts the read with a typed
/// [`CheckpointError::Io`]; a corruption fault flips one byte (which the
/// trailing checksum will catch downstream). All other fault kinds are
/// no-ops at this seam.
fn apply_read_fault(buf: &mut [u8], faults: &FaultInjector) -> Result<(), CheckpointError> {
    match faults.next(Site::CheckpointRead) {
        Some(Fault::TransientIo) => {
            Err(CheckpointError::Io("injected transient i/o error".to_string()))
        }
        Some(Fault::CorruptByte { offset }) => {
            if !buf.is_empty() {
                let at = (offset % buf.len() as u64) as usize;
                buf[at] ^= 0x01;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn take<'a>(buf: &'a [u8], off: &mut usize, len: usize) -> Result<&'a [u8], CheckpointError> {
    let end = off.checked_add(len).ok_or(CheckpointError::Truncated)?;
    let s = buf.get(*off..end).ok_or(CheckpointError::Truncated)?;
    *off = end;
    Ok(s)
}

fn read_u32(buf: &[u8], off: &mut usize) -> Result<u32, CheckpointError> {
    let s = take(buf, off, 4)?;
    let arr: [u8; 4] = s.try_into().map_err(|_| CheckpointError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

fn read_u64(buf: &[u8], off: &mut usize) -> Result<u64, CheckpointError> {
    let s = take(buf, off, 8)?;
    let arr: [u8; 8] = s.try_into().map_err(|_| CheckpointError::Truncated)?;
    Ok(u64::from_le_bytes(arr))
}

fn read_str(buf: &[u8], off: &mut usize) -> Result<String, CheckpointError> {
    let len = read_u32(buf, off)? as usize;
    let s = take(buf, off, len)?;
    String::from_utf8(s.to_vec())
        .map_err(|_| CheckpointError::Malformed("non-utf8 name".to_string()))
}

impl Checkpoint {
    /// Parse and validate a checkpoint from an owned buffer: magic,
    /// version, checksum, directory bounds, and payload alignment are
    /// all checked before any accessor can run.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, CheckpointError> {
        if buf.len() < MAGIC.len() + 8 {
            return Err(CheckpointError::Truncated);
        }
        if buf.get(..MAGIC.len()) != Some(&MAGIC[..]) {
            return Err(CheckpointError::BadMagic);
        }
        let body_len = buf.len() - 8;
        let stored = {
            let mut off = body_len;
            read_u64(&buf, &mut off)?
        };
        if fnv1a64(buf.get(..body_len).unwrap_or_default()) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let body = buf.get(..body_len).unwrap_or_default();
        let mut off = MAGIC.len();
        let version = read_u32(body, &mut off)?;
        if version > VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let n_meta = read_u32(body, &mut off)? as usize;
        let n_tensors = read_u32(body, &mut off)? as usize;
        let mut meta = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = read_str(body, &mut off)?;
            let v = read_str(body, &mut off)?;
            meta.push((k, v));
        }
        let mut dir = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            let name = read_str(body, &mut off)?;
            let code = *take(body, &mut off, 1)?.first().ok_or(CheckpointError::Truncated)?;
            let dtype = DType::from_code(code)
                .ok_or_else(|| CheckpointError::Malformed(format!("unknown dtype {code}")))?;
            let rows = read_u64(body, &mut off)? as usize;
            let cols = read_u64(body, &mut off)? as usize;
            let offset = read_u64(body, &mut off)? as usize;
            let byte_len = read_u64(body, &mut off)? as usize;
            if !offset.is_multiple_of(ALIGN) {
                return Err(CheckpointError::Malformed(format!("tensor `{name}` misaligned")));
            }
            if byte_len != rows.saturating_mul(cols).saturating_mul(dtype.size()) {
                return Err(CheckpointError::Malformed(format!("tensor `{name}` shape/length")));
            }
            if offset.checked_add(byte_len).map(|end| end > body_len).unwrap_or(true) {
                return Err(CheckpointError::Truncated);
            }
            dir.push(DirEntry { name, dtype, rows, cols, offset, byte_len });
        }
        Ok(Checkpoint { buf, meta, dir })
    }

    /// Read and validate a checkpoint file in one sequential pass.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::load_with_faults(path, &FaultInjector::disabled())
    }

    /// [`Checkpoint::load`] with a fault-injection seam: each call
    /// consults the injector's `checkpoint_read` site and may surface an
    /// injected transient I/O error or read through a single flipped
    /// byte (rejected by the checksum like any real corruption).
    pub fn load_with_faults(
        path: &Path,
        faults: &FaultInjector,
    ) -> Result<Self, CheckpointError> {
        let _t = StatTimer::start(&T_CKPT_LOAD);
        let _s = span("checkpoint.load");
        let mut buf = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        apply_read_fault(&mut buf, faults)?;
        counter_add("checkpoint.bytes_read", buf.len() as u64);
        Self::from_bytes(buf)
    }

    /// Map a checkpoint file for serving: one sequential read + full
    /// validation, then share the buffer read-only via cheap
    /// [`MappedCheckpoint`] clones. See [`MappedCheckpoint`] for the
    /// lifetime rules.
    pub fn map(path: &Path) -> Result<MappedCheckpoint, CheckpointError> {
        Self::map_with_faults(path, &FaultInjector::disabled())
    }

    /// [`Checkpoint::map`] with the same fault-injection seam as
    /// [`Checkpoint::load_with_faults`].
    pub fn map_with_faults(
        path: &Path,
        faults: &FaultInjector,
    ) -> Result<MappedCheckpoint, CheckpointError> {
        let _t = StatTimer::start(&T_CKPT_MAP);
        let _s = span("checkpoint.map");
        let mut buf = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        apply_read_fault(&mut buf, faults)?;
        counter_add("checkpoint.bytes_mapped", buf.len() as u64);
        let ck = Self::from_bytes(buf)?;
        Ok(MappedCheckpoint { inner: Arc::new(ck) })
    }

    /// Metadata value for `key`, if present.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All metadata pairs, key-sorted.
    pub fn meta_entries(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Parse a usize metadata value.
    pub fn meta_usize(&self, key: &str) -> Result<usize, CheckpointError> {
        self.meta(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::BadMeta(key.to_string()))
    }

    /// Parse a u64 metadata value.
    pub fn meta_u64(&self, key: &str) -> Result<u64, CheckpointError> {
        self.meta(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::BadMeta(key.to_string()))
    }

    /// Parse an f32 metadata value written by [`f32_meta`].
    pub fn meta_f32(&self, key: &str) -> Result<f32, CheckpointError> {
        self.meta(key)
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .map(f32::from_bits)
            .ok_or_else(|| CheckpointError::BadMeta(key.to_string()))
    }

    /// Names of every stored tensor, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.dir.iter().map(|e| e.name.as_str())
    }

    /// Number of stored tensors.
    pub fn n_tensors(&self) -> usize {
        self.dir.len()
    }

    /// Total container size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buf.len()
    }

    fn entry(&self, name: &str) -> Result<&DirEntry, CheckpointError> {
        self.dir
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| CheckpointError::MissingTensor(name.to_string()))
    }

    /// Zero-copy aligned view of a tensor's payload bytes.
    pub fn view(&self, name: &str) -> Result<TensorView<'_>, CheckpointError> {
        let e = self.entry(name)?;
        let bytes =
            self.buf.get(e.offset..e.offset + e.byte_len).ok_or(CheckpointError::Truncated)?;
        Ok(TensorView { dtype: e.dtype, rows: e.rows, cols: e.cols, bytes })
    }

    /// Zero-copy view checked to hold f32 payload bytes.
    pub fn view_f32(&self, name: &str) -> Result<TensorView<'_>, CheckpointError> {
        let v = self.view(name)?;
        if v.dtype != DType::F32 {
            return Err(CheckpointError::WrongDtype(name.to_string()));
        }
        Ok(v)
    }

    /// Zero-copy view checked to hold i8 payload bytes.
    pub fn view_i8(&self, name: &str) -> Result<TensorView<'_>, CheckpointError> {
        let v = self.view(name)?;
        if v.dtype != DType::I8 {
            return Err(CheckpointError::WrongDtype(name.to_string()));
        }
        Ok(v)
    }

    /// Decode an f32 tensor into `(rows, cols, data)` in one bulk pass.
    pub fn tensor_f32(&self, name: &str) -> Result<(usize, usize, Vec<f32>), CheckpointError> {
        let v = self.view(name)?;
        if v.dtype != DType::F32 {
            return Err(CheckpointError::WrongDtype(name.to_string()));
        }
        let mut data = Vec::with_capacity(v.rows * v.cols);
        for c in v.bytes.chunks_exact(4) {
            let arr: [u8; 4] = c.try_into().map_err(|_| CheckpointError::Truncated)?;
            data.push(f32::from_le_bytes(arr));
        }
        Ok((v.rows, v.cols, data))
    }

    /// Decode an i8 tensor into `(rows, cols, data)`.
    pub fn tensor_i8(&self, name: &str) -> Result<(usize, usize, Vec<i8>), CheckpointError> {
        let v = self.view(name)?;
        if v.dtype != DType::I8 {
            return Err(CheckpointError::WrongDtype(name.to_string()));
        }
        Ok((v.rows, v.cols, v.bytes.iter().map(|&b| b as i8).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Writer {
        let mut w = Writer::new();
        w.meta("zoo", "test");
        w.meta("alpha", "first");
        w.tensor_f32("m/w", 2, 3, &[1.0, -2.0, 3.5, 0.0, 4.25, -0.125]);
        w.tensor_i8("m/q", 1, 4, &[-128, -1, 0, 127]);
        w
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bytes = sample().to_bytes();
        let ck = Checkpoint::from_bytes(bytes).expect("parse");
        assert_eq!(ck.meta("zoo"), Some("test"));
        assert_eq!(ck.meta("alpha"), Some("first"));
        assert_eq!(ck.meta("missing"), None);
        let names: Vec<&str> = ck.names().collect();
        assert_eq!(names, vec!["m/q", "m/w"], "directory is name-sorted");
        let (r, c, data) = ck.tensor_f32("m/w").expect("f32 tensor");
        assert_eq!((r, c), (2, 3));
        assert_eq!(data, vec![1.0, -2.0, 3.5, 0.0, 4.25, -0.125]);
        let (_, _, q) = ck.tensor_i8("m/q").expect("i8 tensor");
        assert_eq!(q, vec![-128, -1, 0, 127]);
    }

    #[test]
    fn deterministic_regardless_of_insertion_order() {
        let mut w2 = Writer::new();
        w2.tensor_i8("m/q", 1, 4, &[-128, -1, 0, 127]);
        w2.meta("alpha", "first");
        w2.tensor_f32("m/w", 2, 3, &[1.0, -2.0, 3.5, 0.0, 4.25, -0.125]);
        w2.meta("zoo", "test");
        assert_eq!(sample().to_bytes(), w2.to_bytes());
    }

    #[test]
    fn payloads_are_aligned() {
        let bytes = sample().to_bytes();
        let ck = Checkpoint::from_bytes(bytes).expect("parse");
        for name in ["m/w", "m/q"] {
            let v = ck.view(name).expect("view");
            // The view's pointer offset into the buffer is a multiple of
            // ALIGN by the directory invariant checked at parse time.
            assert_eq!(v.bytes.as_ptr() as usize % 4, 0, "f32-viewable");
            assert!(!v.bytes.is_empty());
        }
    }

    #[test]
    fn meta_typed_helpers() {
        let mut w = Writer::new();
        w.meta("n", &usize_meta(42));
        w.meta("s", &u64_meta(u64::MAX));
        w.meta("f", &f32_meta(-0.1));
        let ck = Checkpoint::from_bytes(w.to_bytes()).expect("parse");
        assert_eq!(ck.meta_usize("n").expect("n"), 42);
        assert_eq!(ck.meta_u64("s").expect("s"), u64::MAX);
        assert_eq!(ck.meta_f32("f").expect("f"), -0.1);
        assert!(matches!(ck.meta_usize("absent"), Err(CheckpointError::BadMeta(_))));
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let good = sample().to_bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(Checkpoint::from_bytes(bad).unwrap_err(), CheckpointError::BadMagic);
        // Truncation at every prefix length must error, never panic.
        for cut in [0, 7, 12, 19, good.len() / 2, good.len() - 1] {
            let res = Checkpoint::from_bytes(good[..cut].to_vec());
            assert!(res.is_err(), "cut at {cut} accepted");
        }
        // Flip a payload byte: checksum must catch it.
        let mut flipped = good.clone();
        let mid = good.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(
            Checkpoint::from_bytes(flipped).unwrap_err(),
            CheckpointError::ChecksumMismatch
        );
        // Future version is rejected after checksum repair.
        let mut vbump = good.clone();
        vbump[8] = 99;
        let body = vbump.len() - 8;
        let sum = fnv1a64(&vbump[..body]);
        vbump.truncate(body);
        vbump.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(vbump).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn missing_and_mistyped_tensors_error() {
        let ck = Checkpoint::from_bytes(sample().to_bytes()).expect("parse");
        assert!(matches!(ck.tensor_f32("nope"), Err(CheckpointError::MissingTensor(_))));
        assert!(matches!(ck.tensor_f32("m/q"), Err(CheckpointError::WrongDtype(_))));
        assert!(matches!(ck.tensor_i8("m/w"), Err(CheckpointError::WrongDtype(_))));
    }

    #[test]
    fn view_iterators_match_bulk_decode() {
        let ck = Checkpoint::from_bytes(sample().to_bytes()).expect("parse");
        let (_, _, w) = ck.tensor_f32("m/w").expect("bulk f32");
        let lazy: Vec<f32> = ck.view_f32("m/w").expect("view").f32_iter().collect();
        assert_eq!(w, lazy);
        let (_, _, q) = ck.tensor_i8("m/q").expect("bulk i8");
        let lazy_q: Vec<i8> = ck.view_i8("m/q").expect("view").i8_iter().collect();
        assert_eq!(q, lazy_q);
        assert_eq!(ck.view_f32("m/w").expect("view").len(), 6);
        assert!(matches!(ck.view_f32("m/q"), Err(CheckpointError::WrongDtype(_))));
        assert!(matches!(ck.view_i8("m/w"), Err(CheckpointError::WrongDtype(_))));
    }

    #[test]
    fn map_shares_one_validated_buffer() {
        let dir = std::env::temp_dir();
        let path = dir.join("mhd_nn_ckpt_map_test.ckpt");
        sample().save(&path).expect("save");
        let mapped = Checkpoint::map(&path).expect("map");
        // Same parse result as the owning loader.
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(mapped.meta("zoo"), loaded.meta("zoo"));
        assert_eq!(mapped.n_tensors(), loaded.n_tensors());
        assert_eq!(
            mapped.tensor_f32("m/w").expect("mapped"),
            loaded.tensor_f32("m/w").expect("loaded")
        );
        // Clones are handle bumps on the same buffer, not re-reads.
        assert_eq!(mapped.handles(), 1);
        let shard_a = mapped.clone();
        let shard_b = mapped.clone();
        assert_eq!(mapped.handles(), 3);
        assert!(std::ptr::eq(
            shard_a.view("m/w").expect("a").bytes.as_ptr(),
            shard_b.view("m/w").expect("b").bytes.as_ptr()
        ));
        drop(shard_a);
        drop(shard_b);
        assert_eq!(mapped.handles(), 1);
        // Shards may move across worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedCheckpoint>();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("mhd_nn_atomic_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        // Seed the target with an older valid checkpoint, then overwrite.
        sample().save(&path).expect("first save");
        let mut w2 = sample();
        w2.meta("generation", "2");
        w2.save(&path).expect("second save");
        let ck = Checkpoint::load(&path).expect("load after overwrite");
        assert_eq!(ck.meta("generation"), Some("2"));
        // The sibling temp file must not survive a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_rejected_by_load() {
        // Simulate the crash the atomic rename prevents: a prefix of the
        // serialised bytes sitting at the target path. Every prefix must
        // be rejected with a typed error by both readers.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhd_nn_torn_write_{}.ckpt", std::process::id()));
        let good = sample().to_bytes();
        for frac in [1, 3, 7] {
            let cut = good.len() * frac / 8;
            std::fs::write(&path, &good[..cut]).expect("write torn prefix");
            assert!(Checkpoint::load(&path).is_err(), "torn prefix {cut} accepted by load");
            assert!(Checkpoint::map(&path).is_err(), "torn prefix {cut} accepted by map");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_read_faults_surface_as_typed_errors() {
        use mhd_fault::{FaultPlan, Scenario};
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhd_nn_fault_read_{}.ckpt", std::process::id()));
        sample().save(&path).expect("save");
        // The corrupt-checkpoint scenario injects transient I/O errors
        // and single-byte flips; both must come back as typed errors.
        let inj = FaultInjector::new(FaultPlan::new(Scenario::CorruptCheckpoint, 11));
        let mut saw_io = false;
        let mut saw_checksum = false;
        let mut saw_ok = false;
        for _ in 0..64 {
            match Checkpoint::load_with_faults(&path, &inj) {
                Ok(_) => saw_ok = true,
                Err(CheckpointError::Io(msg)) => {
                    assert!(msg.contains("injected"), "unexpected io error: {msg}");
                    saw_io = true;
                }
                // A flipped byte lands in the checksum-covered body (or
                // the checksum itself) → mismatch; or in the magic →
                // rejected even earlier.
                Err(CheckpointError::ChecksumMismatch | CheckpointError::BadMagic) => {
                    saw_checksum = true;
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert!(saw_io && saw_checksum && saw_ok, "io={saw_io} sum={saw_checksum} ok={saw_ok}");
        // The zero-fault injector reads clean, byte-identically.
        let clean = Checkpoint::load_with_faults(&path, &FaultInjector::disabled());
        assert!(clean.is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
