//! LoRA-style low-rank adapters (Hu et al., 2021).
//!
//! Adapts a *frozen* linear map `W : n → m` by learning a low-rank update
//! `ΔW = B Aᵀ` with `A : n×r`, `B : m×r`, `r ≪ min(m, n)`. Only `A` and `B`
//! receive gradients — exactly the mechanism used to instruction-fine-tune
//! the simulated LLM backbone in `mhd-llm`.

use crate::checkpoint;
use crate::gemm::{self, pack_rows, Workspace};
use crate::linalg::{softmax_xent, softmax_xent_rows};
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A low-rank adapter over a frozen `m×n` weight matrix.
#[derive(Debug, Clone)]
pub struct LoraAdapter {
    m: usize,
    n: usize,
    rank: usize,
    /// Frozen base weights, row-major `m×n`.
    base: Vec<f32>,
    /// Frozen base bias, length `m`.
    base_bias: Vec<f32>,
    a: Tensor, // n×r
    b: Tensor, // m×r
    /// LoRA scaling factor α/r.
    scaling: f32,
    opt: Adam,
    ws: Workspace,
}

impl LoraAdapter {
    /// Wrap frozen weights `base` (`m×n`) and `bias` (`m`) with a rank-`r`
    /// adapter. Following the LoRA paper, `A` is Gaussian-initialized and
    /// `B` starts at zero so the adapted map initially equals the base map.
    pub fn new(base: Vec<f32>, bias: Vec<f32>, m: usize, n: usize, rank: usize, lr: f32, seed: u64) -> Self {
        assert_eq!(base.len(), m * n, "base shape mismatch");
        assert_eq!(bias.len(), m, "bias shape mismatch");
        assert!(rank >= 1, "rank must be ≥ 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(n, rank, 0.02, &mut rng);
        let b = Tensor::zeros(m, rank);
        let sizes = [a.len(), b.len()];
        LoraAdapter {
            m,
            n,
            rank,
            base,
            base_bias: bias,
            a,
            b,
            scaling: 2.0, // α/r with α = 2r — the common default regime
            opt: Adam::new(lr, &sizes),
            ws: Workspace::new(),
        }
    }

    /// Forward pass: `(W + s·B Aᵀ) x + bias`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n, "input dim mismatch");
        // Base path.
        let mut out = self.base_bias.clone();
        for i in 0..self.m {
            let row = &self.base[i * self.n..(i + 1) * self.n];
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += row[j] * x[j];
            }
            out[i] += acc;
        }
        // Low-rank path: t = Aᵀ x (r), out += s · B t.
        let t = self.a_t_x(x);
        for i in 0..self.m {
            let brow = self.b.row(i);
            let mut acc = 0.0;
            for k in 0..self.rank {
                acc += brow[k] * t[k];
            }
            out[i] += self.scaling * acc;
        }
        out
    }

    fn a_t_x(&self, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; self.rank];
        for j in 0..self.n {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let arow = self.a.row(j);
            for k in 0..self.rank {
                t[k] += arow[k] * xj;
            }
        }
        t
    }

    /// Batched forward over a slice of inputs: adapted logits per row,
    /// computed as three GEMMs over the packed input matrix.
    /// Bit-identical to mapping [`LoraAdapter::forward`].
    pub fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let bsz = xs.len();
        for x in xs {
            assert_eq!(x.len(), self.n, "input dim mismatch");
        }
        let mut ws = Workspace::new();
        let mut x = ws.zeros(bsz * self.n);
        pack_rows(xs, self.n, &mut x);
        let mut logits = ws.zeros(bsz * self.m);
        let mut t = ws.zeros(bsz * self.rank);
        self.logits_batch(&x, bsz, &mut logits, &mut t);
        (0..bsz).map(|e| logits[e * self.m..(e + 1) * self.m].to_vec()).collect()
    }

    /// Adapted logits for a packed `bsz×n` input matrix, plus the
    /// low-rank activations `t = Aᵀx` the backward pass reuses.
    fn logits_batch(&self, x: &[f32], bsz: usize, logits: &mut [f32], t: &mut [f32]) {
        // Base path: logits = bias + W x (bias added after the sum, the
        // scalar forward's convention).
        gemm::gemm_nt_bias_after(x, &self.base, &self.base_bias, bsz, self.n, self.m, logits);
        // Low-rank path: t = Aᵀ x (skip x == 0, as a_t_x does), then
        // logits += s · B t.
        gemm::gemm_nn(x, &self.a.data, bsz, self.n, self.rank, t, true);
        gemm::gemm_nt_scaled_acc(t, &self.b.data, bsz, self.rank, self.m, self.scaling, logits);
    }

    /// One training step on a batch with softmax cross-entropy over the
    /// adapter's outputs; returns mean loss. Only `A` and `B` are
    /// updated. Runs on the batched GEMM kernels; byte-identical to
    /// [`LoraAdapter::train_batch_reference`].
    pub fn train_batch(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty batch");
        let bsz = xs.len();
        for x in xs {
            assert_eq!(x.len(), self.n, "input dim mismatch");
        }
        let mut x = self.ws.zeros(bsz * self.n);
        pack_rows(xs, self.n, &mut x);
        let mut logits = self.ws.zeros(bsz * self.m);
        let mut t = self.ws.zeros(bsz * self.rank);
        self.logits_batch(&x, bsz, &mut logits, &mut t);
        let total = softmax_xent_rows(&mut logits, self.m, ys);
        // ds = s · dlogits, the common factor of both parameter grads.
        let mut ds = logits;
        for v in &mut ds {
            *v *= self.scaling;
        }
        // dB[i][k] += Σ_e ds[e][i] · t[e][k]  (no zero-skip, as reference)
        gemm::gemm_tn(&ds, &t, bsz, self.m, self.rank, &mut self.b.grad, false);
        // dt[e][k] = Σ_i ds[e][i] · B[i][k]
        let mut dt = self.ws.zeros(bsz * self.rank);
        gemm::gemm_nn(&ds, &self.b.data, bsz, self.m, self.rank, &mut dt, false);
        // dA[j][k] += Σ_e x[e][j] · dt[e][k]  (skip x == 0, as reference)
        gemm::gemm_tn(&x, &dt, bsz, self.n, self.rank, &mut self.a.grad, true);
        self.ws.recycle(x);
        self.ws.recycle(ds);
        self.ws.recycle(t);
        self.ws.recycle(dt);
        self.apply_grads(bsz);
        total / bsz as f32
    }

    /// Per-example reference implementation of
    /// [`LoraAdapter::train_batch`], kept as the bit-identity oracle for
    /// tests and benches.
    pub fn train_batch_reference(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty batch");
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let logits = self.forward(x);
            let (loss, dout) = softmax_xent(&logits, y);
            total += loss;
            let t = self.a_t_x(x);
            // dB[i][k] += s · dout[i] · t[k]
            for i in 0..self.m {
                let di = self.scaling * dout[i];
                for k in 0..self.rank {
                    *self.b.grad_at_mut(i, k) += di * t[k];
                }
            }
            // dt[k] = s · Σ_i dout[i] B[i][k]; dA[j][k] += dt[k] x[j]
            let mut dt = vec![0.0; self.rank];
            for i in 0..self.m {
                let di = self.scaling * dout[i];
                let brow = self.b.row(i);
                for k in 0..self.rank {
                    dt[k] += di * brow[k];
                }
            }
            for j in 0..self.n {
                let xj = x[j];
                if xj == 0.0 {
                    continue;
                }
                for k in 0..self.rank {
                    *self.a.grad_at_mut(j, k) += dt[k] * xj;
                }
            }
        }
        self.apply_grads(xs.len());
        total / xs.len() as f32
    }

    /// Mean-scale accumulated gradients and take one Adam step.
    fn apply_grads(&mut self, bsz: usize) {
        let scale = 1.0 / bsz as f32;
        for t in [&mut self.a, &mut self.b] {
            for g in &mut t.grad {
                *g *= scale;
            }
        }
        let LoraAdapter { a, b, opt, .. } = self;
        opt.step(&mut [a, b], Some(5.0));
    }

    /// Serialize the adapter (frozen base included, so a checkpoint is
    /// self-contained) under `prefix` into a checkpoint writer.
    pub fn write_checkpoint(&self, prefix: &str, w: &mut checkpoint::Writer) {
        w.meta(&format!("{prefix}.kind"), "lora");
        w.meta(&format!("{prefix}.m"), &checkpoint::usize_meta(self.m));
        w.meta(&format!("{prefix}.n"), &checkpoint::usize_meta(self.n));
        w.meta(&format!("{prefix}.rank"), &checkpoint::usize_meta(self.rank));
        w.meta(&format!("{prefix}.scaling"), &checkpoint::f32_meta(self.scaling));
        w.meta(&format!("{prefix}.lr"), &checkpoint::f32_meta(self.opt.lr));
        w.tensor_f32(&format!("{prefix}/base"), self.m, self.n, &self.base);
        w.tensor_f32(&format!("{prefix}/base_bias"), 1, self.m, &self.base_bias);
        w.tensor_f32(&format!("{prefix}/a"), self.a.rows, self.a.cols, &self.a.data);
        w.tensor_f32(&format!("{prefix}/b"), self.b.rows, self.b.cols, &self.b.data);
    }

    /// Deserialize an adapter written by [`LoraAdapter::write_checkpoint`].
    pub fn from_checkpoint(
        ck: &checkpoint::Checkpoint,
        prefix: &str,
    ) -> Result<LoraAdapter, checkpoint::CheckpointError> {
        let m = ck.meta_usize(&format!("{prefix}.m"))?;
        let n = ck.meta_usize(&format!("{prefix}.n"))?;
        let rank = ck.meta_usize(&format!("{prefix}.rank"))?;
        let scaling = ck.meta_f32(&format!("{prefix}.scaling"))?;
        let lr = ck.meta_f32(&format!("{prefix}.lr"))?;
        let (_, _, base) = ck.tensor_f32(&format!("{prefix}/base"))?;
        let (_, _, base_bias) = ck.tensor_f32(&format!("{prefix}/base_bias"))?;
        let tensor = |name: &str| -> Result<Tensor, checkpoint::CheckpointError> {
            let (rows, cols, data) = ck.tensor_f32(&format!("{prefix}/{name}"))?;
            Ok(Tensor { rows, cols, grad: vec![0.0; data.len()], data })
        };
        let a = tensor("a")?;
        let b = tensor("b")?;
        if base.len() != m * n
            || base_bias.len() != m
            || a.len() != n * rank
            || b.len() != m * rank
            || rank == 0
        {
            return Err(checkpoint::CheckpointError::Malformed(
                "lora tensor shape mismatch".to_string(),
            ));
        }
        let sizes = [a.len(), b.len()];
        Ok(LoraAdapter {
            m,
            n,
            rank,
            base,
            base_bias,
            a,
            b,
            scaling,
            opt: Adam::new(lr, &sizes),
            ws: Workspace::new(),
        })
    }

    /// Number of *trainable* parameters (the adapter only).
    pub fn trainable_params(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// Number of frozen parameters.
    pub fn frozen_params(&self) -> usize {
        self.base.len() + self.base_bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::argmax;
    use rand::Rng;

    /// A base map that is useless (zero) for a task the adapter must learn.
    #[test]
    fn adapter_learns_on_frozen_zero_base() {
        let (m, n) = (2, 4);
        let mut adapter = LoraAdapter::new(vec![0.0; m * n], vec![0.0; m], m, n, 2, 0.05, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let class = i % 2;
            let sign = if class == 0 { 1.0 } else { -1.0 };
            xs.push(vec![
                sign + rng.gen_range(-0.3..0.3f32),
                rng.gen_range(-0.3..0.3),
                -sign + rng.gen_range(-0.3..0.3),
                rng.gen_range(-0.3..0.3),
            ]);
            ys.push(class);
        }
        for _ in 0..80 {
            adapter.train_batch(&xs, &ys);
        }
        let acc = xs.iter().zip(&ys).filter(|(x, &y)| argmax(&adapter.forward(x)) == y).count()
            as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn zero_init_b_preserves_base_map() {
        let base = vec![1.0, 0.0, 0.0, 1.0];
        let bias = vec![0.5, -0.5];
        let adapter = LoraAdapter::new(base, bias, 2, 2, 4, 0.01, 3);
        let out = adapter.forward(&[2.0, 3.0]);
        assert_eq!(out, vec![2.5, 2.5]);
    }

    #[test]
    fn base_never_changes() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let mut adapter = LoraAdapter::new(base.clone(), vec![0.0; 2], 2, 2, 1, 0.1, 4);
        for _ in 0..10 {
            adapter.train_batch(&[vec![1.0, -1.0]], &[0]);
        }
        assert_eq!(adapter.base, base, "frozen weights must not move");
    }

    #[test]
    fn param_counts() {
        let adapter = LoraAdapter::new(vec![0.0; 200], vec![0.0; 10], 10, 20, 2, 0.01, 5);
        assert_eq!(adapter.trainable_params(), 20 * 2 + 10 * 2);
        assert_eq!(adapter.frozen_params(), 210);
        assert!(adapter.trainable_params() < adapter.frozen_params());
    }

    #[test]
    fn loss_decreases() {
        let mut adapter = LoraAdapter::new(vec![0.0; 8], vec![0.0; 2], 2, 4, 2, 0.05, 6);
        let xs = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 0.0]];
        let ys = vec![0, 1];
        let first = adapter.train_batch(&xs, &ys);
        let mut last = first;
        for _ in 0..50 {
            last = adapter.train_batch(&xs, &ys);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn zero_rank_rejected() {
        LoraAdapter::new(vec![0.0; 4], vec![0.0; 2], 2, 2, 0, 0.1, 1);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_forward() {
        let base = vec![0.3, -0.2, 0.1, 0.5, 0.4, -0.6];
        let mut adapter = LoraAdapter::new(base, vec![0.1, -0.1], 2, 3, 2, 0.05, 7);
        let xs = vec![vec![1.0, -0.5, 0.25], vec![0.0, 2.0, -1.0]];
        let ys = vec![0, 1];
        for _ in 0..10 {
            adapter.train_batch(&xs, &ys);
        }
        let mut w = checkpoint::Writer::new();
        adapter.write_checkpoint("lora", &mut w);
        let ck = checkpoint::Checkpoint::from_bytes(w.to_bytes()).expect("parse");
        let loaded = LoraAdapter::from_checkpoint(&ck, "lora").expect("load");
        for x in &xs {
            let (a, b) = (adapter.forward(x), loaded.forward(x));
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
        assert_eq!(loaded.trainable_params(), adapter.trainable_params());
        assert_eq!(loaded.frozen_params(), adapter.frozen_params());
    }

    /// The tentpole contract for LoRA: batched training is byte-identical
    /// to the per-example reference, on inputs with exact zeros (the
    /// zero-skip path) and a non-trivial frozen base.
    #[test]
    fn batched_training_bit_identical_to_reference() {
        let (m, n, rank) = (3, 7, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let base: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-0.5..0.5f32)).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.gen_range(-0.2..0.2f32)).collect();
        let mut batched = LoraAdapter::new(base, bias, m, n, rank, 0.03, 11);
        let mut reference = batched.clone();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..23 {
            let mut x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            x[i % n] = 0.0; // exact zeros exercise the skip paths
            xs.push(x);
            ys.push(i % m);
        }
        for step in 0..5 {
            let lb = batched.train_batch(&xs, &ys);
            let lr = reference.train_batch_reference(&xs, &ys);
            assert_eq!(lb.to_bits(), lr.to_bits(), "loss diverged at step {step}");
        }
        for (name, t, r) in [("a", &batched.a, &reference.a), ("b", &batched.b, &reference.b)] {
            let tb: Vec<u32> = t.data.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = r.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(tb, rb, "{name} diverged");
        }
        // The batched forward must agree with the scalar forward too.
        let fb = batched.forward_batch(&xs);
        for (x, row) in xs.iter().zip(&fb) {
            let single = batched.forward(x);
            let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, rb);
        }
    }
}
