//! Mini-batch training loop with shuffling and early stopping.

use mhd_obs::{StatCell, StatTimer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One record per epoch across every `train()` call in the process:
/// the coarse "how much time goes into gradient steps" kernel stat.
static T_EPOCH: StatCell = StatCell::new("nn.train.epoch");

/// Anything trainable on `(example, label)` pairs with batch updates.
pub trait BatchTrainable<X> {
    /// Train on one mini-batch; return mean loss.
    fn fit_batch(&mut self, xs: &[X], ys: &[usize]) -> f32;
    /// Predict a class for one example.
    fn predict_one(&self, x: &X) -> usize;
    /// Predict classes for a slice of examples. Models with a batched
    /// forward override this with one GEMM pass over the whole slice;
    /// results must match mapping [`BatchTrainable::predict_one`].
    fn predict_batch(&self, xs: &[X]) -> Vec<usize> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }
}

impl BatchTrainable<Vec<f32>> for crate::mlp::Mlp {
    fn fit_batch(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        self.train_batch(xs, ys)
    }
    fn predict_one(&self, x: &Vec<f32>) -> usize {
        self.predict(x)
    }
    fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba_batch(xs).iter().map(|p| crate::mlp::argmax(p)).collect()
    }
}

impl BatchTrainable<Vec<u32>> for crate::encoder::Encoder {
    fn fit_batch(&mut self, xs: &[Vec<u32>], ys: &[usize]) -> f32 {
        self.train_batch(xs, ys)
    }
    fn predict_one(&self, x: &Vec<u32>) -> usize {
        self.predict(x)
    }
    fn predict_batch(&self, xs: &[Vec<u32>]) -> Vec<usize> {
        self.predict_proba_batch(xs).iter().map(|p| crate::mlp::argmax(p)).collect()
    }
}

/// Training-loop options.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Stop after this many epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions { max_epochs: 30, batch_size: 32, patience: 5, seed: 13 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Validation accuracy per epoch (empty when no validation set given).
    pub val_accuracy: Vec<f64>,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
}

/// Run the training loop. Validation data is optional; with `patience > 0`
/// and a validation set, training stops early when accuracy plateaus.
pub fn train<X: Clone, M: BatchTrainable<X>>(
    model: &mut M,
    train_x: &[X],
    train_y: &[usize],
    val: Option<(&[X], &[usize])>,
    opts: &TrainOptions,
) -> TrainReport {
    assert_eq!(train_x.len(), train_y.len());
    assert!(!train_x.is_empty(), "empty training set");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..train_x.len()).collect();
    let mut losses = Vec::new();
    let mut val_accuracy = Vec::new();
    let mut best = 0.0f64;
    let mut stale = 0usize;
    let mut epochs = 0;
    for _ in 0..opts.max_epochs {
        let _epoch_t = StatTimer::start(&T_EPOCH);
        epochs += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0;
        for chunk in order.chunks(opts.batch_size.max(1)) {
            let xs: Vec<X> = chunk.iter().map(|&i| train_x[i].clone()).collect();
            let ys: Vec<usize> = chunk.iter().map(|&i| train_y[i]).collect();
            epoch_loss += model.fit_batch(&xs, &ys);
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f32);
        if let Some((vx, vy)) = val {
            let preds = model.predict_batch(vx);
            let correct = preds.iter().zip(vy).filter(|(&p, &y)| p == y).count();
            let acc = correct as f64 / vx.len().max(1) as f64;
            val_accuracy.push(acc);
            if acc > best {
                best = acc;
                stale = 0;
            } else {
                stale += 1;
                if opts.patience > 0 && stale >= opts.patience {
                    break;
                }
            }
        }
    }
    TrainReport { epochs, losses, val_accuracy, best_val_accuracy: best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;

    fn blob_data(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -1.0 } else { 1.0 };
            let jitter = (i as f32 * 0.37).sin() * 0.4;
            xs.push(vec![c + jitter, c - jitter]);
            ys.push(class);
        }
        (xs, ys)
    }

    #[test]
    fn trains_to_high_accuracy() {
        let (xs, ys) = blob_data(120);
        let mut m = Mlp::new(2, 0, 2, 0.05, 1);
        let report = train(&mut m, &xs, &ys, Some((&xs, &ys)), &TrainOptions::default());
        assert!(report.best_val_accuracy > 0.95, "{report:?}");
        assert!(!report.losses.is_empty());
    }

    #[test]
    fn early_stopping_triggers() {
        let (xs, ys) = blob_data(60);
        let mut m = Mlp::new(2, 0, 2, 0.1, 2);
        let opts = TrainOptions { max_epochs: 100, batch_size: 16, patience: 3, seed: 4 };
        let report = train(&mut m, &xs, &ys, Some((&xs, &ys)), &opts);
        assert!(report.epochs < 100, "should stop early, ran {}", report.epochs);
    }

    #[test]
    fn no_validation_runs_all_epochs() {
        let (xs, ys) = blob_data(40);
        let mut m = Mlp::new(2, 0, 2, 0.05, 3);
        let opts = TrainOptions { max_epochs: 7, batch_size: 8, patience: 2, seed: 5 };
        let report = train(&mut m, &xs, &ys, None, &opts);
        assert_eq!(report.epochs, 7);
        assert!(report.val_accuracy.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_rejected() {
        let mut m = Mlp::new(2, 0, 2, 0.05, 3);
        train(&mut m, &[], &[], None, &TrainOptions::default());
    }
}
