//! Dense kernels shared by the models.

/// `out = W x + b`, where `W` is `m×n` row-major, `x` is length-`n`,
/// `b` length-`m`.
pub fn affine(w: &[f32], b: &[f32], x: &[f32], m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(w.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(b.len(), m);
    debug_assert_eq!(out.len(), m);
    for i in 0..m {
        let row = &w[i * n..(i + 1) * n];
        let mut acc = b[i];
        for j in 0..n {
            acc += row[j] * x[j];
        }
        out[i] = acc;
    }
}

/// `out = Wᵀ d` — backprop of [`affine`] into the input: `W` is `m×n`,
/// `d` length-`m`, `out` length-`n` (accumulated, caller zeroes).
pub fn affine_backward_input(w: &[f32], d: &[f32], m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), n);
    for i in 0..m {
        let di = d[i];
        if di == 0.0 {
            continue;
        }
        let row = &w[i * n..(i + 1) * n];
        for j in 0..n {
            out[j] += row[j] * di;
        }
    }
}

/// Accumulate `grad_w += d ⊗ x` and `grad_b += d` — backprop of [`affine`]
/// into the parameters.
pub fn affine_backward_params(
    grad_w: &mut [f32],
    grad_b: &mut [f32],
    d: &[f32],
    x: &[f32],
    m: usize,
    n: usize,
) {
    for i in 0..m {
        let di = d[i];
        grad_b[i] += di;
        if di == 0.0 {
            continue;
        }
        let row = &mut grad_w[i * n..(i + 1) * n];
        for j in 0..n {
            row[j] += di * x[j];
        }
    }
}

/// In-place ReLU; fills `mask` (cleared first) with the active-unit mask
/// for the backward pass. Takes the mask as caller-provided scratch so a
/// pooled buffer (see [`crate::gemm::Workspace`]) can be reused across
/// calls instead of allocating a fresh `Vec<bool>` per example.
pub fn relu_inplace(x: &mut [f32], mask: &mut Vec<bool>) {
    mask.clear();
    mask.reserve(x.len());
    for v in x.iter_mut() {
        let active = *v > 0.0;
        mask.push(active);
        if !active {
            *v = 0.0;
        }
    }
}

/// Apply ReLU mask to a gradient in place.
pub fn relu_backward(d: &mut [f32], mask: &[bool]) {
    for (g, &m) in d.iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
}

/// Numerically stable softmax into a new vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss for a softmax distribution against a gold class, and
/// the gradient w.r.t. the logits (`p - onehot`).
pub fn softmax_xent(logits: &[f32], gold: usize) -> (f32, Vec<f32>) {
    let p = softmax(logits);
    let loss = -(p[gold].max(1e-12)).ln();
    let mut d = p;
    d[gold] -= 1.0;
    (loss, d)
}

/// Row-wise fused softmax + cross-entropy over a packed `rows×n_classes`
/// logit matrix: each row is replaced in place by its gradient
/// (`p - onehot(gold)`) and the summed loss is returned.
///
/// Bit-identical to calling [`softmax_xent`] on each row and summing the
/// losses in row order — the batched heads rely on this to reproduce the
/// per-example reference path exactly.
pub fn softmax_xent_rows(logits: &mut [f32], n_classes: usize, golds: &[usize]) -> f32 {
    debug_assert_eq!(logits.len(), golds.len() * n_classes);
    let mut total = 0.0f32;
    for (e, &gold) in golds.iter().enumerate() {
        let row = &mut logits[e * n_classes..(e + 1) * n_classes];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in row.iter_mut() {
            *v = (*v - max).exp();
        }
        let sum: f32 = row.iter().sum();
        for v in row.iter_mut() {
            *v /= sum;
        }
        total += -(row[gold].max(1e-12)).ln();
        row[gold] -= 1.0;
    }
    total
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_matches_manual() {
        // W = [[1,2],[3,4]], b = [0.5, -0.5], x = [1, -1]
        let w = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -0.5];
        let x = [1.0, -1.0];
        let mut out = [0.0; 2];
        affine(&w, &b, &x, 2, 2, &mut out);
        assert_eq!(out, [-0.5, -1.5]);
    }

    #[test]
    fn affine_backward_consistency() {
        // Numerical check of input gradient on a random-ish small case.
        let w = [0.3, -0.2, 0.1, 0.5, 0.4, -0.6];
        let b = [0.0, 0.0];
        let x = [0.7, -0.3, 0.2];
        let d = [1.0, -2.0]; // upstream gradient
        let mut analytic = vec![0.0; 3];
        affine_backward_input(&w, &d, 2, 3, &mut analytic);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut xp = x;
            xp[j] += eps;
            let mut xm = x;
            xm[j] -= eps;
            let mut op = [0.0; 2];
            let mut om = [0.0; 2];
            affine(&w, &b, &xp, 2, 3, &mut op);
            affine(&w, &b, &xm, 2, 3, &mut om);
            let num: f32 = (0..2).map(|i| d[i] * (op[i] - om[i]) / (2.0 * eps)).sum();
            assert!((analytic[j] - num).abs() < 1e-2, "j={j}: {} vs {num}", analytic[j]);
        }
    }

    #[test]
    fn affine_param_grads() {
        let d = [2.0, -1.0];
        let x = [3.0, 4.0];
        let mut gw = vec![0.0; 4];
        let mut gb = vec![0.0; 2];
        affine_backward_params(&mut gw, &mut gb, &d, &x, 2, 2);
        assert_eq!(gw, vec![6.0, 8.0, -3.0, -4.0]);
        assert_eq!(gb, vec![2.0, -1.0]);
    }

    #[test]
    fn relu_roundtrip() {
        let mut x = vec![1.0, -1.0, 0.0, 2.0];
        let mut mask = vec![true; 1]; // stale scratch must be cleared
        relu_inplace(&mut x, &mut mask);
        assert_eq!(x, vec![1.0, 0.0, 0.0, 2.0]);
        let mut d = vec![5.0, 5.0, 5.0, 5.0];
        relu_backward(&mut d, &mask);
        assert_eq!(d, vec![5.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn xent_gradient_shape() {
        let (loss, d) = softmax_xent(&[0.0, 0.0, 0.0], 1);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        assert!((d[1] - (1.0 / 3.0 - 1.0)).abs() < 1e-5);
        assert!((d.iter().sum::<f32>()).abs() < 1e-6, "gradient sums to zero");
    }

    #[test]
    fn xent_rows_bit_identical_to_per_example() {
        let logits = vec![0.3f32, -1.2, 0.8, 2.0, 0.1, -0.4];
        let golds = [2usize, 0];
        let mut batched = logits.clone();
        let total = softmax_xent_rows(&mut batched, 3, &golds);
        let mut ref_total = 0.0f32;
        let mut ref_grads = Vec::new();
        for (e, &gold) in golds.iter().enumerate() {
            let (loss, d) = softmax_xent(&logits[e * 3..(e + 1) * 3], gold);
            ref_total += loss;
            ref_grads.extend(d);
        }
        assert_eq!(total.to_bits(), ref_total.to_bits());
        assert_eq!(batched, ref_grads);
    }

    #[test]
    fn xent_decreases_with_confidence() {
        let (low, _) = softmax_xent(&[0.0, 0.0], 0);
        let (high, _) = softmax_xent(&[5.0, 0.0], 0);
        assert!(high < low);
    }
}
