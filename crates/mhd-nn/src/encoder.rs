//! Attention-pooled text encoder classifier.
//!
//! Architecture (all trained from scratch by manual backprop):
//!
//! ```text
//! token ids ─► Embedding E (V×d)
//!            ─► additive attention  s_t = v·tanh(W e_t),  α = softmax(s)
//!            ─► pooled p = Σ_t α_t e_t
//!            ─► ReLU MLP head ─► softmax
//! ```
//!
//! This is the benchmark's "BERT-class" discriminative baseline: a dense
//! representation with learned salience over tokens, trained end-to-end on
//! the target task. Truncation at `max_len` mirrors encoder context limits.
//!
//! Training runs batched on the [`crate::gemm`] kernels: attention
//! forward/backward is computed per example in parallel (each example is
//! pure, so rayon's ordered map keeps results deterministic), the head is
//! three GEMMs over the packed pooled matrix, and the three global
//! accumulations (`att_v.grad`, `att_w.grad`, the embedding scatter) are
//! reduced in **fixed example order**, making every step byte-identical
//! to the per-example reference ([`Encoder::train_batch_reference`]) at
//! any thread count.

use crate::checkpoint;
use crate::gemm::{self, Workspace};
use crate::linalg::{
    affine, affine_backward_input, affine_backward_params, dot, relu_backward, relu_inplace,
    softmax, softmax_xent, softmax_xent_rows,
};
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::OnceLock;

/// Configuration for [`Encoder`].
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Vocabulary size (token ids must be < this).
    pub vocab_size: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden width of the classification head.
    pub hidden_dim: usize,
    /// Number of output classes.
    pub n_classes: usize,
    /// Maximum sequence length (longer inputs truncated).
    pub max_len: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            vocab_size: 8192,
            embed_dim: 48,
            hidden_dim: 64,
            n_classes: 2,
            max_len: 128,
            lr: 2e-3,
            seed: 17,
        }
    }
}

/// The encoder classifier.
#[derive(Debug, Clone)]
pub struct Encoder {
    cfg: EncoderConfig,
    emb: Tensor,   // V×d
    att_w: Tensor, // d×d
    att_v: Tensor, // 1×d
    w1: Tensor,    // h×d
    b1: Tensor,    // 1×h
    w2: Tensor,    // k×h
    b2: Tensor,    // 1×k
    opt: Adam,
    ws: Workspace,
    /// Serving-state cache: k-major packs of `att_w` / `w1` / `w2` for
    /// the batched forward paths (see [`gemm::pack_b_nt`]). Built lazily,
    /// taken by every optimizer step. Without it [`Encoder::attention_forward`]
    /// repacks the d×d attention matrix once **per document**.
    packed: OnceLock<PackedEncWeights>,
}

/// Packed forward-path weights for [`Encoder`].
#[derive(Debug, Clone, Default)]
struct PackedEncWeights {
    att_wt: Vec<f32>,
    w1t: Vec<f32>,
    w2t: Vec<f32>,
}

struct Cache {
    tokens: Vec<u32>,
    u: Vec<Vec<f32>>, // tanh(W e_t)
    alpha: Vec<f32>,
    pooled: Vec<f32>,
    h: Vec<f32>,
    mask: Vec<bool>,
}

/// Per-example attention forward state for the batched path: embedding
/// rows and tanh activations packed as row-major n×d matrices.
struct AttnCache {
    tokens: Vec<u32>,
    e_flat: Vec<f32>, // n×d gathered embedding rows
    u_flat: Vec<f32>, // n×d tanh(W e_t)
    alpha: Vec<f32>,
    pooled: Vec<f32>, // d
}

/// Per-example attention backward output, reduced serially afterwards.
#[derive(Default)]
struct AttnGrads {
    ds: Vec<f32>,      // n — score gradients
    dz_flat: Vec<f32>, // n×d — pre-tanh gradients
    de_flat: Vec<f32>, // n×d — embedding-row gradients
}

impl Encoder {
    /// Create a new encoder with random initialization.
    pub fn new(cfg: EncoderConfig) -> Self {
        assert!(cfg.vocab_size > 0 && cfg.embed_dim > 0 && cfg.n_classes >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.embed_dim;
        let emb = Tensor::randn(cfg.vocab_size, d, 0.1, &mut rng);
        let att_w = Tensor::xavier(d, d, &mut rng);
        let att_v = Tensor::randn(1, d, 0.1, &mut rng);
        let w1 = Tensor::xavier(cfg.hidden_dim, d, &mut rng);
        let b1 = Tensor::zeros(1, cfg.hidden_dim);
        let w2 = Tensor::xavier(cfg.n_classes, cfg.hidden_dim, &mut rng);
        let b2 = Tensor::zeros(1, cfg.n_classes);
        let sizes =
            [emb.len(), att_w.len(), att_v.len(), w1.len(), b1.len(), w2.len(), b2.len()];
        let opt = Adam::new(cfg.lr, &sizes);
        Encoder {
            cfg,
            emb,
            att_w,
            att_v,
            w1,
            b1,
            w2,
            b2,
            opt,
            ws: Workspace::new(),
            packed: OnceLock::new(),
        }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Packed forward-path weights, built on first use.
    fn packed(&self) -> &PackedEncWeights {
        self.packed.get_or_init(|| {
            let d = self.cfg.embed_dim;
            PackedEncWeights {
                att_wt: gemm::pack_b_nt(&self.att_w.data, d, d),
                w1t: gemm::pack_b_nt(&self.w1.data, d, self.cfg.hidden_dim),
                w2t: gemm::pack_b_nt(&self.w2.data, self.cfg.hidden_dim, self.cfg.n_classes),
            }
        })
    }

    /// Force the packed serving state to exist now (zoo startup calls
    /// this so the first request does not pay the pack).
    pub fn prepack(&self) {
        let _ = self.packed();
    }

    fn forward(&self, tokens: &[u32]) -> (Vec<f32>, Cache) {
        let d = self.cfg.embed_dim;
        let toks: Vec<u32> = tokens
            .iter()
            .copied()
            .filter(|&t| (t as usize) < self.cfg.vocab_size)
            .take(self.cfg.max_len)
            .collect();
        let n = toks.len();
        let (alpha, u, pooled) = if n == 0 {
            (Vec::new(), Vec::new(), vec![0.0; d])
        } else {
            // Attention scores.
            let zero_bias = vec![0.0; d]; // hoisted: one alloc per call, not per token
            let mut u = Vec::with_capacity(n);
            let mut scores = Vec::with_capacity(n);
            for &t in &toks {
                let e = self.emb.row(t as usize);
                let mut z = vec![0.0; d];
                // z = W e (no bias)
                affine(&self.att_w.data, &zero_bias, e, d, d, &mut z);
                for zi in &mut z {
                    *zi = zi.tanh();
                }
                scores.push(dot(&self.att_v.data, &z));
                u.push(z);
            }
            let alpha = softmax(&scores);
            let mut pooled = vec![0.0; d];
            for (t, &a) in toks.iter().zip(&alpha) {
                let e = self.emb.row(*t as usize);
                for j in 0..d {
                    pooled[j] += a * e[j];
                }
            }
            (alpha, u, pooled)
        };
        // Head.
        let mut h = vec![0.0; self.cfg.hidden_dim];
        affine(&self.w1.data, &self.b1.data, &pooled, self.cfg.hidden_dim, d, &mut h);
        let mut mask = Vec::new();
        relu_inplace(&mut h, &mut mask);
        let mut logits = vec![0.0; self.cfg.n_classes];
        affine(&self.w2.data, &self.b2.data, &h, self.cfg.n_classes, self.cfg.hidden_dim, &mut logits);
        (logits, Cache { tokens: toks, u, alpha, pooled, h, mask })
    }

    /// Attention forward for the batched path. Bit-identical to the
    /// attention half of [`Encoder::forward`], with the per-token rows
    /// packed as n×d matrices so one [`gemm::gemm_nt`] covers `W e_t`
    /// for every token.
    fn attention_forward(&self, tokens: &[u32]) -> AttnCache {
        let d = self.cfg.embed_dim;
        let toks: Vec<u32> = tokens
            .iter()
            .copied()
            .filter(|&t| (t as usize) < self.cfg.vocab_size)
            .take(self.cfg.max_len)
            .collect();
        let n = toks.len();
        if n == 0 {
            return AttnCache {
                tokens: toks,
                e_flat: Vec::new(),
                u_flat: Vec::new(),
                alpha: Vec::new(),
                pooled: vec![0.0; d],
            };
        }
        let mut e_flat = vec![0.0; n * d];
        for (t, &tok) in toks.iter().enumerate() {
            e_flat[t * d..(t + 1) * d].copy_from_slice(self.emb.row(tok as usize));
        }
        // u = tanh(E_rows · Wᵀ): gemm_nt against the d×d row-major W is
        // exactly `affine(W, 0, e_t)` per row. The pack of W is cached
        // across documents (bit-identical to the per-call pack).
        let mut u_flat = vec![0.0; n * d];
        gemm::gemm_nt_packed(&e_flat, &self.packed().att_wt, None, n, d, d, &mut u_flat);
        for v in &mut u_flat {
            *v = v.tanh();
        }
        let scores: Vec<f32> =
            (0..n).map(|t| dot(&self.att_v.data, &u_flat[t * d..(t + 1) * d])).collect();
        let alpha = softmax(&scores);
        let mut pooled = vec![0.0; d];
        for (t, &a) in alpha.iter().enumerate() {
            let e = &e_flat[t * d..(t + 1) * d];
            for (p, &ej) in pooled.iter_mut().zip(e) {
                *p += a * ej;
            }
        }
        AttnCache { tokens: toks, e_flat, u_flat, alpha, pooled }
    }

    /// Pure per-example attention backward: consumes the head's pooled
    /// gradient and produces this example's score/pre-tanh/embedding-row
    /// gradients. No shared state is touched, so examples run in
    /// parallel; the caller reduces the outputs in fixed example order.
    fn attention_backward_example(&self, cache: &AttnCache, dpooled: &[f32]) -> AttnGrads {
        let d = self.cfg.embed_dim;
        let n = cache.tokens.len();
        if n == 0 {
            return AttnGrads::default();
        }
        // Pooling backward: dα_t = dpooled·e_t.
        let mut dalpha = vec![0.0; n];
        for t in 0..n {
            dalpha[t] = dot(dpooled, &cache.e_flat[t * d..(t + 1) * d]);
        }
        // Softmax backward: ds_t = α_t (dα_t − Σ_j α_j dα_j).
        let inner: f32 = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * g).sum();
        let ds: Vec<f32> = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * (g - inner)).collect();
        // Pooling contribution to de, then de += Wᵀ dz.
        let mut de_flat = vec![0.0; n * d];
        for t in 0..n {
            let a = cache.alpha[t];
            let row = &mut de_flat[t * d..(t + 1) * d];
            for (j, g) in dpooled.iter().enumerate() {
                row[j] = g * a;
            }
        }
        // dz = ds_t * v ⊙ (1 − u²).
        let mut dz_flat = vec![0.0; n * d];
        for t in 0..n {
            let st = ds[t];
            let urow = &cache.u_flat[t * d..(t + 1) * d];
            let row = &mut dz_flat[t * d..(t + 1) * d];
            for ((z, &vj), &uj) in row.iter_mut().zip(&self.att_v.data).zip(urow) {
                *z = st * vj * (1.0 - uj * uj);
            }
        }
        gemm::gemm_nn(&dz_flat, &self.att_w.data, n, d, d, &mut de_flat, true);
        AttnGrads { ds, dz_flat, de_flat }
    }

    /// Predicted class probabilities.
    pub fn predict_proba(&self, tokens: &[u32]) -> Vec<f32> {
        softmax(&self.forward(tokens).0)
    }

    /// Batched class probabilities: attention forward in parallel per
    /// example, head as GEMMs over the packed pooled matrix.
    /// Bit-identical to mapping [`Encoder::predict_proba`].
    pub fn predict_proba_batch(&self, docs: &[Vec<u32>]) -> Vec<Vec<f32>> {
        if docs.is_empty() {
            return Vec::new();
        }
        let bsz = docs.len();
        let (d, hdim, k) = (self.cfg.embed_dim, self.cfg.hidden_dim, self.cfg.n_classes);
        let packed = self.packed(); // built once, before the parallel fan-out
        let caches: Vec<AttnCache> = docs.par_iter().map(|doc| self.attention_forward(doc)).collect();
        let mut ws = Workspace::new();
        let mut p = ws.zeros(bsz * d);
        for (e, c) in caches.iter().enumerate() {
            p[e * d..(e + 1) * d].copy_from_slice(&c.pooled);
        }
        let mut h = ws.zeros(bsz * hdim);
        let mut mask = ws.mask(bsz * hdim);
        gemm::gemm_nt_relu_packed(&p, &packed.w1t, &self.b1.data, bsz, d, hdim, &mut h, &mut mask);
        let mut logits = ws.zeros(bsz * k);
        gemm::gemm_nt_packed(&h, &packed.w2t, Some(&self.b2.data), bsz, hdim, k, &mut logits);
        (0..bsz).map(|e| softmax(&logits[e * k..(e + 1) * k])).collect()
    }

    /// Predicted class.
    pub fn predict(&self, tokens: &[u32]) -> usize {
        crate::mlp::argmax(&self.predict_proba(tokens))
    }

    fn backward_example(&mut self, tokens: &[u32], gold: usize) -> f32 {
        let (logits, cache) = self.forward(tokens);
        let (loss, dlogits) = softmax_xent(&logits, gold);
        let d = self.cfg.embed_dim;
        let hdim = self.cfg.hidden_dim;
        // Head backward.
        affine_backward_params(&mut self.w2.grad, &mut self.b2.grad, &dlogits, &cache.h, self.cfg.n_classes, hdim);
        let mut dh = vec![0.0; hdim];
        affine_backward_input(&self.w2.data, &dlogits, self.cfg.n_classes, hdim, &mut dh);
        relu_backward(&mut dh, &cache.mask);
        affine_backward_params(&mut self.w1.grad, &mut self.b1.grad, &dh, &cache.pooled, hdim, d);
        let mut dpooled = vec![0.0; d];
        affine_backward_input(&self.w1.data, &dh, hdim, d, &mut dpooled);

        let n = cache.tokens.len();
        if n == 0 {
            return loss;
        }
        // Pooling backward: dα_t = dpooled·e_t ; de_t += α_t dpooled.
        let mut dalpha = vec![0.0; n];
        for (idx, &t) in cache.tokens.iter().enumerate() {
            let e = self.emb.row(t as usize).to_vec();
            dalpha[idx] = dot(&dpooled, &e);
        }
        // Softmax backward: ds_t = α_t (dα_t − Σ_j α_j dα_j).
        let inner: f32 = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * g).sum();
        let ds: Vec<f32> = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * (g - inner)).collect();
        // Per-token parameter and embedding gradients.
        for (idx, &t) in cache.tokens.iter().enumerate() {
            let row = t as usize;
            let e = self.emb.row(row).to_vec();
            let u = &cache.u[idx];
            // Pooling contribution to de.
            let mut de: Vec<f32> = dpooled.iter().map(|&g| g * cache.alpha[idx]).collect();
            // dv += ds_t * u_t.
            for j in 0..d {
                self.att_v.grad[j] += ds[idx] * u[j];
            }
            // dz = ds_t * v ⊙ (1 − u²).
            let dz: Vec<f32> = (0..d)
                .map(|j| ds[idx] * self.att_v.data[j] * (1.0 - u[j] * u[j]))
                .collect();
            // dW += dz ⊗ e ; de += Wᵀ dz.
            affine_backward_params(&mut self.att_w.grad, &mut vec![0.0; d], &dz, &e, d, d);
            affine_backward_input(&self.att_w.data, &dz, d, d, &mut de);
            // Scatter into the embedding table.
            for j in 0..d {
                self.emb.grad[row * d + j] += de[j];
            }
        }
        loss
    }

    /// Train one mini-batch (token sequences + gold labels) on the
    /// batched GEMM path; returns mean loss. Byte-identical to
    /// [`Encoder::train_batch_reference`] at any thread count.
    pub fn train_batch(&mut self, docs: &[Vec<u32>], ys: &[usize]) -> f32 {
        assert_eq!(docs.len(), ys.len());
        assert!(!docs.is_empty(), "empty batch");
        let bsz = docs.len();
        let (d, hdim, k) = (self.cfg.embed_dim, self.cfg.hidden_dim, self.cfg.n_classes);

        // 1. Attention forward, parallel per example (pure w.r.t. self).
        let this: &Encoder = self;
        let caches: Vec<AttnCache> = docs.par_iter().map(|doc| this.attention_forward(doc)).collect();

        // 2. Head forward + backward as GEMMs over the pooled matrix.
        let mut p = self.ws.zeros(bsz * d);
        for (e, c) in caches.iter().enumerate() {
            p[e * d..(e + 1) * d].copy_from_slice(&c.pooled);
        }
        let mut h = self.ws.zeros(bsz * hdim);
        let mut mask = self.ws.mask(bsz * hdim);
        gemm::gemm_nt_relu(&p, &self.w1.data, &self.b1.data, bsz, d, hdim, &mut h, &mut mask);
        let mut logits = self.ws.zeros(bsz * k);
        gemm::gemm_nt(&h, &self.w2.data, Some(&self.b2.data), bsz, hdim, k, &mut logits);
        let total = softmax_xent_rows(&mut logits, k, ys);
        let dl = logits; // rows now hold dlogits
        gemm::gemm_tn(&dl, &h, bsz, k, hdim, &mut self.w2.grad, true);
        gemm::colsum_acc(&dl, bsz, k, &mut self.b2.grad);
        let mut dh = self.ws.zeros(bsz * hdim);
        gemm::gemm_nn(&dl, &self.w2.data, bsz, k, hdim, &mut dh, true);
        relu_backward(&mut dh, &mask);
        gemm::gemm_tn(&dh, &p, bsz, hdim, d, &mut self.w1.grad, true);
        gemm::colsum_acc(&dh, bsz, hdim, &mut self.b1.grad);
        let mut dp = self.ws.zeros(bsz * d);
        gemm::gemm_nn(&dh, &self.w1.data, bsz, hdim, d, &mut dp, true);

        // 3. Attention backward, parallel per example (pure).
        let this: &Encoder = self;
        let dp_ref: &[f32] = &dp;
        let idxs: Vec<usize> = (0..bsz).collect();
        let grads: Vec<AttnGrads> = idxs
            .par_iter()
            .map(|&e| this.attention_backward_example(&caches[e], &dp_ref[e * d..(e + 1) * d]))
            .collect();

        // 4. Global reductions in fixed (example, token) order — the same
        // per-tensor accumulation order as the reference loop, so the
        // result is byte-identical regardless of thread count.
        for (cache, g) in caches.iter().zip(&grads) {
            for (t, &st) in g.ds.iter().enumerate() {
                let urow = &cache.u_flat[t * d..(t + 1) * d];
                for (gv, &uj) in self.att_v.grad.iter_mut().zip(urow) {
                    *gv += st * uj;
                }
            }
        }
        let t_total: usize = caches.iter().map(|c| c.tokens.len()).sum();
        let mut dz_all = self.ws.zeros(t_total * d);
        let mut e_all = self.ws.zeros(t_total * d);
        let mut off = 0;
        for (cache, g) in caches.iter().zip(&grads) {
            let nd = cache.tokens.len() * d;
            dz_all[off..off + nd].copy_from_slice(&g.dz_flat);
            e_all[off..off + nd].copy_from_slice(&cache.e_flat);
            off += nd;
        }
        // One big (T_total×d)ᵀ·(T_total×d) GEMM — the heaviest kernel of
        // the step; row-chunk parallel inside gemm_tn, still e-ascending
        // per output element.
        gemm::gemm_tn(&dz_all, &e_all, t_total, d, d, &mut self.att_w.grad, true);
        for (cache, g) in caches.iter().zip(&grads) {
            for (t, &tok) in cache.tokens.iter().enumerate() {
                let row = tok as usize * d;
                let de = &g.de_flat[t * d..(t + 1) * d];
                let dst = &mut self.emb.grad[row..row + d];
                for (gv, &dj) in dst.iter_mut().zip(de) {
                    *gv += dj;
                }
            }
        }

        self.ws.recycle(p);
        self.ws.recycle(h);
        self.ws.recycle(dl);
        self.ws.recycle(dh);
        self.ws.recycle(dp);
        self.ws.recycle(dz_all);
        self.ws.recycle(e_all);
        self.ws.recycle_mask(mask);
        self.apply_grads(bsz);
        total / bsz as f32
    }

    /// Per-example reference implementation of [`Encoder::train_batch`],
    /// kept as the bit-identity oracle for tests and benches.
    pub fn train_batch_reference(&mut self, docs: &[Vec<u32>], ys: &[usize]) -> f32 {
        assert_eq!(docs.len(), ys.len());
        assert!(!docs.is_empty(), "empty batch");
        let mut total = 0.0;
        for (doc, &y) in docs.iter().zip(ys) {
            total += self.backward_example(doc, y);
        }
        self.apply_grads(docs.len());
        total / docs.len() as f32
    }

    /// Mean-scale accumulated gradients and take one Adam step.
    fn apply_grads(&mut self, bsz: usize) {
        // Weights are about to change: drop the packed serving cache.
        let _ = self.packed.take();
        let scale = 1.0 / bsz as f32;
        let Encoder { emb, att_w, att_v, w1, b1, w2, b2, opt, .. } = self;
        for t in [&mut *emb, &mut *att_w, &mut *att_v, &mut *w1, &mut *b1, &mut *w2, &mut *b2] {
            for g in &mut t.grad {
                *g *= scale;
            }
        }
        opt.step(&mut [emb, att_w, att_v, w1, b1, w2, b2], Some(5.0));
    }

    /// Attention weights over (truncated) input tokens — interpretability
    /// hook used by the examples.
    pub fn attention(&self, tokens: &[u32]) -> Vec<f32> {
        self.forward(tokens).1.alpha
    }

    /// Quantize the trained weights into an int8 inference model: the
    /// three heavy GEMMs run int8, embeddings/tanh/softmax stay f32
    /// (see [`crate::quant::QuantizedEncoder`]).
    pub fn quantize(&self) -> crate::quant::QuantizedEncoder {
        crate::quant::QuantizedEncoder::from_parts(
            self.cfg,
            &self.emb.data,
            &self.att_w.data,
            &self.att_v.data,
            &self.w1.data,
            &self.b1.data,
            &self.w2.data,
            &self.b2.data,
        )
    }

    /// Serialize the f32 parameters under `prefix` into a checkpoint
    /// writer (optimizer state is not persisted).
    pub fn write_checkpoint(&self, prefix: &str, w: &mut checkpoint::Writer) {
        w.meta(&format!("{prefix}.kind"), "encoder");
        w.meta(&format!("{prefix}.vocab_size"), &checkpoint::usize_meta(self.cfg.vocab_size));
        w.meta(&format!("{prefix}.embed_dim"), &checkpoint::usize_meta(self.cfg.embed_dim));
        w.meta(&format!("{prefix}.hidden_dim"), &checkpoint::usize_meta(self.cfg.hidden_dim));
        w.meta(&format!("{prefix}.n_classes"), &checkpoint::usize_meta(self.cfg.n_classes));
        w.meta(&format!("{prefix}.max_len"), &checkpoint::usize_meta(self.cfg.max_len));
        w.meta(&format!("{prefix}.lr"), &checkpoint::f32_meta(self.cfg.lr));
        w.meta(&format!("{prefix}.seed"), &checkpoint::u64_meta(self.cfg.seed));
        for (name, t) in [
            ("emb", &self.emb),
            ("att_w", &self.att_w),
            ("att_v", &self.att_v),
            ("w1", &self.w1),
            ("b1", &self.b1),
            ("w2", &self.w2),
            ("b2", &self.b2),
        ] {
            w.tensor_f32(&format!("{prefix}/{name}"), t.rows, t.cols, &t.data);
        }
    }

    /// Deserialize a model written by [`Encoder::write_checkpoint`].
    pub fn from_checkpoint(
        ck: &checkpoint::Checkpoint,
        prefix: &str,
    ) -> Result<Encoder, checkpoint::CheckpointError> {
        let cfg = EncoderConfig {
            vocab_size: ck.meta_usize(&format!("{prefix}.vocab_size"))?,
            embed_dim: ck.meta_usize(&format!("{prefix}.embed_dim"))?,
            hidden_dim: ck.meta_usize(&format!("{prefix}.hidden_dim"))?,
            n_classes: ck.meta_usize(&format!("{prefix}.n_classes"))?,
            max_len: ck.meta_usize(&format!("{prefix}.max_len"))?,
            lr: ck.meta_f32(&format!("{prefix}.lr"))?,
            seed: ck.meta_u64(&format!("{prefix}.seed"))?,
        };
        let tensor = |name: &str| -> Result<Tensor, checkpoint::CheckpointError> {
            let (rows, cols, data) = ck.tensor_f32(&format!("{prefix}/{name}"))?;
            Ok(Tensor { rows, cols, grad: vec![0.0; data.len()], data })
        };
        let emb = tensor("emb")?;
        let att_w = tensor("att_w")?;
        let att_v = tensor("att_v")?;
        let w1 = tensor("w1")?;
        let b1 = tensor("b1")?;
        let w2 = tensor("w2")?;
        let b2 = tensor("b2")?;
        let d = cfg.embed_dim;
        if emb.len() != cfg.vocab_size * d
            || att_w.len() != d * d
            || att_v.len() != d
            || w1.len() != cfg.hidden_dim * d
            || w2.len() != cfg.n_classes * cfg.hidden_dim
        {
            return Err(checkpoint::CheckpointError::Malformed(
                "encoder tensor shape mismatch".to_string(),
            ));
        }
        let sizes =
            [emb.len(), att_w.len(), att_v.len(), w1.len(), b1.len(), w2.len(), b2.len()];
        let opt = Adam::new(cfg.lr, &sizes);
        Ok(Encoder {
            cfg,
            emb,
            att_w,
            att_v,
            w1,
            b1,
            w2,
            b2,
            opt,
            ws: Workspace::new(),
            packed: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(classes: usize) -> EncoderConfig {
        EncoderConfig {
            vocab_size: 50,
            embed_dim: 16,
            hidden_dim: 16,
            n_classes: classes,
            max_len: 16,
            lr: 5e-3,
            seed: 5,
        }
    }

    /// Class 0 docs use tokens 0..10, class 1 docs use tokens 10..20.
    fn toy_data() -> (Vec<Vec<u32>>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40u32 {
            let class = (i % 2) as usize;
            let base = if class == 0 { 0 } else { 10 };
            docs.push(vec![base + i % 10, base + (i + 3) % 10, base + (i + 7) % 10]);
            ys.push(class);
        }
        (docs, ys)
    }

    #[test]
    fn learns_token_classes() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..60 {
            enc.train_batch(&docs, &ys);
        }
        let acc =
            docs.iter().zip(&ys).filter(|(d, &y)| enc.predict(d) == y).count() as f64 / docs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        let first = enc.train_batch(&docs, &ys);
        let mut last = first;
        for _ in 0..30 {
            last = enc.train_batch(&docs, &ys);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn attention_is_distribution() {
        let enc = Encoder::new(cfg(2));
        let a = enc.attention(&[1, 2, 3, 4]);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn attention_learns_salience() {
        // Token 42 decides the class; filler tokens 0..5 are common to both.
        let mut docs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40u32 {
            let class = (i % 2) as usize;
            let mut d = vec![i % 5, (i + 1) % 5, (i + 2) % 5];
            if class == 1 {
                d.push(42);
            } else {
                d.push(5 + i % 5);
            }
            docs.push(d);
            ys.push(class);
        }
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..80 {
            enc.train_batch(&docs, &ys);
        }
        // On a positive doc, the decisive token should get above-uniform mass.
        let att = enc.attention(&[0, 1, 2, 42]);
        assert!(att[3] > 0.25, "salient token attention {att:?}");
    }

    #[test]
    fn empty_and_oov_inputs_safe() {
        let enc = Encoder::new(cfg(3));
        let p = enc.predict_proba(&[]);
        assert_eq!(p.len(), 3);
        let p2 = enc.predict_proba(&[9999]); // entirely out-of-vocab
        assert!((p2.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn truncation_respected() {
        let enc = Encoder::new(cfg(2));
        let long: Vec<u32> = (0..100).map(|i| i % 50).collect();
        let a = enc.attention(&long);
        assert_eq!(a.len(), enc.config().max_len);
    }

    /// Finite-difference check: the analytic gradient of the loss w.r.t. a
    /// sampled set of parameters must match (loss(θ+ε) − loss(θ−ε)) / 2ε.
    #[test]
    fn gradients_match_finite_differences() {
        let mut enc = Encoder::new(EncoderConfig {
            vocab_size: 12,
            embed_dim: 6,
            hidden_dim: 5,
            n_classes: 3,
            max_len: 8,
            lr: 1e-3,
            seed: 11,
        });
        let tokens = vec![1u32, 4, 7, 2];
        let gold = 2usize;
        // Analytic gradients.
        enc.backward_example(&tokens, gold);
        let loss_at = |e: &Encoder| {
            let (logits, _) = e.forward(&tokens);
            crate::linalg::softmax_xent(&logits, gold).0
        };
        let eps = 2e-3f32;
        // Check a spread of parameters across every tensor
        // (emb index 8 = row 1, col 2 of the 6-wide embedding).
        let checks: [(&str, usize); 6] =
            [("emb", 8), ("att_w", 7), ("att_v", 3), ("w1", 9), ("w2", 4), ("b2", 1)];
        for (tensor_name, idx) in checks {
            let (analytic, numeric) = {
                let grad = match tensor_name {
                    "emb" => enc.emb.grad[idx],
                    "att_w" => enc.att_w.grad[idx],
                    "att_v" => enc.att_v.grad[idx],
                    "w1" => enc.w1.grad[idx],
                    "w2" => enc.w2.grad[idx],
                    "b2" => enc.b2.grad[idx],
                    _ => unreachable!(),
                };
                let mut plus = enc.clone();
                let mut minus = enc.clone();
                {
                    let (p, m) = match tensor_name {
                        "emb" => (&mut plus.emb, &mut minus.emb),
                        "att_w" => (&mut plus.att_w, &mut minus.att_w),
                        "att_v" => (&mut plus.att_v, &mut minus.att_v),
                        "w1" => (&mut plus.w1, &mut minus.w1),
                        "w2" => (&mut plus.w2, &mut minus.w2),
                        "b2" => (&mut plus.b2, &mut minus.b2),
                        _ => unreachable!(),
                    };
                    p.data[idx] += eps;
                    m.data[idx] -= eps;
                }
                (grad, (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps))
            };
            assert!(
                (analytic - numeric).abs() < 2e-2_f32.max(0.15 * numeric.abs()),
                "{tensor_name}[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn deterministic_training() {
        let (docs, ys) = toy_data();
        let mut a = Encoder::new(cfg(2));
        let mut b = Encoder::new(cfg(2));
        for _ in 0..5 {
            a.train_batch(&docs, &ys);
            b.train_batch(&docs, &ys);
        }
        assert_eq!(a.predict_proba(&docs[0]), b.predict_proba(&docs[0]));
    }

    /// The tentpole contract for the encoder: batched training (parallel
    /// attention + GEMM head + fixed-order reductions) is byte-identical
    /// to the per-example reference loop, including across empty and
    /// truncated documents and multiple optimizer steps.
    #[test]
    fn batched_training_bit_identical_to_reference() {
        let (mut docs, mut ys) = toy_data();
        docs.push(Vec::new()); // empty doc exercises the n == 0 path
        ys.push(0);
        docs.push((0..100u32).map(|i| i % 50).collect()); // truncated doc
        ys.push(1);
        let mut batched = Encoder::new(cfg(2));
        let mut reference = batched.clone();
        for step in 0..4 {
            let lb = batched.train_batch(&docs, &ys);
            let lr = reference.train_batch_reference(&docs, &ys);
            assert_eq!(lb.to_bits(), lr.to_bits(), "loss diverged at step {step}");
        }
        for (name, t, r) in [
            ("emb", &batched.emb, &reference.emb),
            ("att_w", &batched.att_w, &reference.att_w),
            ("att_v", &batched.att_v, &reference.att_v),
            ("w1", &batched.w1, &reference.w1),
            ("b1", &batched.b1, &reference.b1),
            ("w2", &batched.w2, &reference.w2),
            ("b2", &batched.b2, &reference.b2),
        ] {
            let tb: Vec<u32> = t.data.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = r.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(tb, rb, "{name} diverged");
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..10 {
            enc.train_batch(&docs, &ys);
        }
        let mut w = checkpoint::Writer::new();
        enc.write_checkpoint("enc", &mut w);
        let ck = checkpoint::Checkpoint::from_bytes(w.to_bytes()).expect("parse");
        let loaded = Encoder::from_checkpoint(&ck, "enc").expect("load");
        for doc in &docs {
            let (a, b) = (enc.predict_proba(doc), loaded.predict_proba(doc));
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
        assert_eq!(loaded.config().max_len, enc.config().max_len);
    }

    /// Quantized inference tracks f32 on a trained encoder: small
    /// probability deltas, near-total argmax agreement.
    #[test]
    fn quantized_encoder_tracks_f32() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..60 {
            enc.train_batch(&docs, &ys);
        }
        let q = enc.quantize();
        let pf = enc.predict_proba_batch(&docs);
        let pq = q.predict_proba_batch(&docs);
        let mut max_delta = 0.0f32;
        let mut agree = 0usize;
        for (f, qq) in pf.iter().zip(&pq) {
            for (&a, &b) in f.iter().zip(qq) {
                max_delta = max_delta.max((a - b).abs());
            }
            if crate::mlp::argmax(f) == crate::mlp::argmax(qq) {
                agree += 1;
            }
        }
        assert!(max_delta < 0.08, "max per-class probability delta {max_delta}");
        assert!(agree * 100 >= docs.len() * 95, "argmax agreement {agree}/{}", docs.len());
        // Empty and OOV docs stay safe through the quantized path too.
        let p = q.predict_proba(&[]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn predict_proba_batch_matches_per_example() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..10 {
            enc.train_batch(&docs, &ys);
        }
        let batched = enc.predict_proba_batch(&docs);
        for (doc, row) in docs.iter().zip(&batched) {
            let single = enc.predict_proba(doc);
            let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, rb);
        }
    }
}
