//! Attention-pooled text encoder classifier.
//!
//! Architecture (all trained from scratch by manual backprop):
//!
//! ```text
//! token ids ─► Embedding E (V×d)
//!            ─► additive attention  s_t = v·tanh(W e_t),  α = softmax(s)
//!            ─► pooled p = Σ_t α_t e_t
//!            ─► ReLU MLP head ─► softmax
//! ```
//!
//! This is the benchmark's "BERT-class" discriminative baseline: a dense
//! representation with learned salience over tokens, trained end-to-end on
//! the target task. Truncation at `max_len` mirrors encoder context limits.

use crate::linalg::{
    affine, affine_backward_input, affine_backward_params, dot, relu_backward, relu_inplace,
    softmax, softmax_xent,
};
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`Encoder`].
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Vocabulary size (token ids must be < this).
    pub vocab_size: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden width of the classification head.
    pub hidden_dim: usize,
    /// Number of output classes.
    pub n_classes: usize,
    /// Maximum sequence length (longer inputs truncated).
    pub max_len: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            vocab_size: 8192,
            embed_dim: 48,
            hidden_dim: 64,
            n_classes: 2,
            max_len: 128,
            lr: 2e-3,
            seed: 17,
        }
    }
}

/// The encoder classifier.
#[derive(Debug, Clone)]
pub struct Encoder {
    cfg: EncoderConfig,
    emb: Tensor,   // V×d
    att_w: Tensor, // d×d
    att_v: Tensor, // 1×d
    w1: Tensor,    // h×d
    b1: Tensor,    // 1×h
    w2: Tensor,    // k×h
    b2: Tensor,    // 1×k
    opt: Adam,
}

struct Cache {
    tokens: Vec<u32>,
    u: Vec<Vec<f32>>, // tanh(W e_t)
    alpha: Vec<f32>,
    pooled: Vec<f32>,
    h: Vec<f32>,
    mask: Vec<bool>,
}

impl Encoder {
    /// Create a new encoder with random initialization.
    pub fn new(cfg: EncoderConfig) -> Self {
        assert!(cfg.vocab_size > 0 && cfg.embed_dim > 0 && cfg.n_classes >= 2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.embed_dim;
        let emb = Tensor::randn(cfg.vocab_size, d, 0.1, &mut rng);
        let att_w = Tensor::xavier(d, d, &mut rng);
        let att_v = Tensor::randn(1, d, 0.1, &mut rng);
        let w1 = Tensor::xavier(cfg.hidden_dim, d, &mut rng);
        let b1 = Tensor::zeros(1, cfg.hidden_dim);
        let w2 = Tensor::xavier(cfg.n_classes, cfg.hidden_dim, &mut rng);
        let b2 = Tensor::zeros(1, cfg.n_classes);
        let sizes =
            [emb.len(), att_w.len(), att_v.len(), w1.len(), b1.len(), w2.len(), b2.len()];
        let opt = Adam::new(cfg.lr, &sizes);
        Encoder { cfg, emb, att_w, att_v, w1, b1, w2, b2, opt }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    fn forward(&self, tokens: &[u32]) -> (Vec<f32>, Cache) {
        let d = self.cfg.embed_dim;
        let toks: Vec<u32> = tokens
            .iter()
            .copied()
            .filter(|&t| (t as usize) < self.cfg.vocab_size)
            .take(self.cfg.max_len)
            .collect();
        let n = toks.len();
        let (alpha, u, pooled) = if n == 0 {
            (Vec::new(), Vec::new(), vec![0.0; d])
        } else {
            // Attention scores.
            let mut u = Vec::with_capacity(n);
            let mut scores = Vec::with_capacity(n);
            for &t in &toks {
                let e = self.emb.row(t as usize);
                let mut z = vec![0.0; d];
                // z = W e (no bias)
                affine(&self.att_w.data, &vec![0.0; d], e, d, d, &mut z);
                for zi in &mut z {
                    *zi = zi.tanh();
                }
                scores.push(dot(&self.att_v.data, &z));
                u.push(z);
            }
            let alpha = softmax(&scores);
            let mut pooled = vec![0.0; d];
            for (t, &a) in toks.iter().zip(&alpha) {
                let e = self.emb.row(*t as usize);
                for j in 0..d {
                    pooled[j] += a * e[j];
                }
            }
            (alpha, u, pooled)
        };
        // Head.
        let mut h = vec![0.0; self.cfg.hidden_dim];
        affine(&self.w1.data, &self.b1.data, &pooled, self.cfg.hidden_dim, d, &mut h);
        let mask = relu_inplace(&mut h);
        let mut logits = vec![0.0; self.cfg.n_classes];
        affine(&self.w2.data, &self.b2.data, &h, self.cfg.n_classes, self.cfg.hidden_dim, &mut logits);
        (logits, Cache { tokens: toks, u, alpha, pooled, h, mask })
    }

    /// Predicted class probabilities.
    pub fn predict_proba(&self, tokens: &[u32]) -> Vec<f32> {
        softmax(&self.forward(tokens).0)
    }

    /// Predicted class.
    pub fn predict(&self, tokens: &[u32]) -> usize {
        crate::mlp::argmax(&self.predict_proba(tokens))
    }

    fn backward_example(&mut self, tokens: &[u32], gold: usize) -> f32 {
        let (logits, cache) = self.forward(tokens);
        let (loss, dlogits) = softmax_xent(&logits, gold);
        let d = self.cfg.embed_dim;
        let hdim = self.cfg.hidden_dim;
        // Head backward.
        affine_backward_params(&mut self.w2.grad, &mut self.b2.grad, &dlogits, &cache.h, self.cfg.n_classes, hdim);
        let mut dh = vec![0.0; hdim];
        affine_backward_input(&self.w2.data, &dlogits, self.cfg.n_classes, hdim, &mut dh);
        relu_backward(&mut dh, &cache.mask);
        affine_backward_params(&mut self.w1.grad, &mut self.b1.grad, &dh, &cache.pooled, hdim, d);
        let mut dpooled = vec![0.0; d];
        affine_backward_input(&self.w1.data, &dh, hdim, d, &mut dpooled);

        let n = cache.tokens.len();
        if n == 0 {
            return loss;
        }
        // Pooling backward: dα_t = dpooled·e_t ; de_t += α_t dpooled.
        let mut dalpha = vec![0.0; n];
        for (idx, &t) in cache.tokens.iter().enumerate() {
            let e = self.emb.row(t as usize).to_vec();
            dalpha[idx] = dot(&dpooled, &e);
        }
        // Softmax backward: ds_t = α_t (dα_t − Σ_j α_j dα_j).
        let inner: f32 = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * g).sum();
        let ds: Vec<f32> = cache.alpha.iter().zip(&dalpha).map(|(a, g)| a * (g - inner)).collect();
        // Per-token parameter and embedding gradients.
        for (idx, &t) in cache.tokens.iter().enumerate() {
            let row = t as usize;
            let e = self.emb.row(row).to_vec();
            let u = &cache.u[idx];
            // Pooling contribution to de.
            let mut de: Vec<f32> = dpooled.iter().map(|&g| g * cache.alpha[idx]).collect();
            // dv += ds_t * u_t.
            for j in 0..d {
                self.att_v.grad[j] += ds[idx] * u[j];
            }
            // dz = ds_t * v ⊙ (1 − u²).
            let dz: Vec<f32> = (0..d)
                .map(|j| ds[idx] * self.att_v.data[j] * (1.0 - u[j] * u[j]))
                .collect();
            // dW += dz ⊗ e ; de += Wᵀ dz.
            affine_backward_params(&mut self.att_w.grad, &mut vec![0.0; d], &dz, &e, d, d);
            affine_backward_input(&self.att_w.data, &dz, d, d, &mut de);
            // Scatter into the embedding table.
            for j in 0..d {
                self.emb.grad[row * d + j] += de[j];
            }
        }
        loss
    }

    /// Train one mini-batch (token sequences + gold labels); returns mean
    /// loss.
    pub fn train_batch(&mut self, docs: &[Vec<u32>], ys: &[usize]) -> f32 {
        assert_eq!(docs.len(), ys.len());
        assert!(!docs.is_empty(), "empty batch");
        let mut total = 0.0;
        for (doc, &y) in docs.iter().zip(ys) {
            total += self.backward_example(doc, y);
        }
        let scale = 1.0 / docs.len() as f32;
        let Encoder { emb, att_w, att_v, w1, b1, w2, b2, opt, .. } = self;
        for t in [&mut *emb, &mut *att_w, &mut *att_v, &mut *w1, &mut *b1, &mut *w2, &mut *b2] {
            for g in &mut t.grad {
                *g *= scale;
            }
        }
        opt.step(&mut [emb, att_w, att_v, w1, b1, w2, b2], Some(5.0));
        total / docs.len() as f32
    }

    /// Attention weights over (truncated) input tokens — interpretability
    /// hook used by the examples.
    pub fn attention(&self, tokens: &[u32]) -> Vec<f32> {
        self.forward(tokens).1.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(classes: usize) -> EncoderConfig {
        EncoderConfig {
            vocab_size: 50,
            embed_dim: 16,
            hidden_dim: 16,
            n_classes: classes,
            max_len: 16,
            lr: 5e-3,
            seed: 5,
        }
    }

    /// Class 0 docs use tokens 0..10, class 1 docs use tokens 10..20.
    fn toy_data() -> (Vec<Vec<u32>>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40u32 {
            let class = (i % 2) as usize;
            let base = if class == 0 { 0 } else { 10 };
            docs.push(vec![base + i % 10, base + (i + 3) % 10, base + (i + 7) % 10]);
            ys.push(class);
        }
        (docs, ys)
    }

    #[test]
    fn learns_token_classes() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..60 {
            enc.train_batch(&docs, &ys);
        }
        let acc =
            docs.iter().zip(&ys).filter(|(d, &y)| enc.predict(d) == y).count() as f64 / docs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases() {
        let (docs, ys) = toy_data();
        let mut enc = Encoder::new(cfg(2));
        let first = enc.train_batch(&docs, &ys);
        let mut last = first;
        for _ in 0..30 {
            last = enc.train_batch(&docs, &ys);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn attention_is_distribution() {
        let enc = Encoder::new(cfg(2));
        let a = enc.attention(&[1, 2, 3, 4]);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(a.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn attention_learns_salience() {
        // Token 42 decides the class; filler tokens 0..5 are common to both.
        let mut docs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40u32 {
            let class = (i % 2) as usize;
            let mut d = vec![i % 5, (i + 1) % 5, (i + 2) % 5];
            if class == 1 {
                d.push(42);
            } else {
                d.push(5 + i % 5);
            }
            docs.push(d);
            ys.push(class);
        }
        let mut enc = Encoder::new(cfg(2));
        for _ in 0..80 {
            enc.train_batch(&docs, &ys);
        }
        // On a positive doc, the decisive token should get above-uniform mass.
        let att = enc.attention(&[0, 1, 2, 42]);
        assert!(att[3] > 0.25, "salient token attention {att:?}");
    }

    #[test]
    fn empty_and_oov_inputs_safe() {
        let enc = Encoder::new(cfg(3));
        let p = enc.predict_proba(&[]);
        assert_eq!(p.len(), 3);
        let p2 = enc.predict_proba(&[9999]); // entirely out-of-vocab
        assert!((p2.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn truncation_respected() {
        let enc = Encoder::new(cfg(2));
        let long: Vec<u32> = (0..100).map(|i| i % 50).collect();
        let a = enc.attention(&long);
        assert_eq!(a.len(), enc.config().max_len);
    }

    /// Finite-difference check: the analytic gradient of the loss w.r.t. a
    /// sampled set of parameters must match (loss(θ+ε) − loss(θ−ε)) / 2ε.
    #[test]
    fn gradients_match_finite_differences() {
        let mut enc = Encoder::new(EncoderConfig {
            vocab_size: 12,
            embed_dim: 6,
            hidden_dim: 5,
            n_classes: 3,
            max_len: 8,
            lr: 1e-3,
            seed: 11,
        });
        let tokens = vec![1u32, 4, 7, 2];
        let gold = 2usize;
        // Analytic gradients.
        enc.backward_example(&tokens, gold);
        let loss_at = |e: &Encoder| {
            let (logits, _) = e.forward(&tokens);
            crate::linalg::softmax_xent(&logits, gold).0
        };
        let eps = 2e-3f32;
        // Check a spread of parameters across every tensor
        // (emb index 8 = row 1, col 2 of the 6-wide embedding).
        let checks: [(&str, usize); 6] =
            [("emb", 8), ("att_w", 7), ("att_v", 3), ("w1", 9), ("w2", 4), ("b2", 1)];
        for (tensor_name, idx) in checks {
            let (analytic, numeric) = {
                let grad = match tensor_name {
                    "emb" => enc.emb.grad[idx],
                    "att_w" => enc.att_w.grad[idx],
                    "att_v" => enc.att_v.grad[idx],
                    "w1" => enc.w1.grad[idx],
                    "w2" => enc.w2.grad[idx],
                    "b2" => enc.b2.grad[idx],
                    _ => unreachable!(),
                };
                let mut plus = enc.clone();
                let mut minus = enc.clone();
                {
                    let (p, m) = match tensor_name {
                        "emb" => (&mut plus.emb, &mut minus.emb),
                        "att_w" => (&mut plus.att_w, &mut minus.att_w),
                        "att_v" => (&mut plus.att_v, &mut minus.att_v),
                        "w1" => (&mut plus.w1, &mut minus.w1),
                        "w2" => (&mut plus.w2, &mut minus.w2),
                        "b2" => (&mut plus.b2, &mut minus.b2),
                        _ => unreachable!(),
                    };
                    p.data[idx] += eps;
                    m.data[idx] -= eps;
                }
                (grad, (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps))
            };
            assert!(
                (analytic - numeric).abs() < 2e-2_f32.max(0.15 * numeric.abs()),
                "{tensor_name}[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn deterministic_training() {
        let (docs, ys) = toy_data();
        let mut a = Encoder::new(cfg(2));
        let mut b = Encoder::new(cfg(2));
        for _ in 0..5 {
            a.train_batch(&docs, &ys);
            b.train_batch(&docs, &ys);
        }
        assert_eq!(a.predict_proba(&docs[0]), b.predict_proba(&docs[0]));
    }
}
