//! Cache-blocked, batched matrix–matrix kernels and the scratch-buffer
//! [`Workspace`] behind the batched training paths in [`crate::mlp`],
//! [`crate::encoder`] and [`crate::lora`].
//!
//! # Bit-identity contract
//!
//! Every kernel here is a drop-in replacement for a loop over the scalar
//! reference kernels in [`crate::linalg`] (`affine`,
//! `affine_backward_input`, `affine_backward_params`) and must produce
//! **bit-identical** `f32` results. IEEE-754 addition is not associative,
//! so the kernels never reassociate sums: each output element's
//! k-dimension accumulation runs sequentially in the same index order as
//! the reference, and cache blocking only reorders *which* independent
//! output elements are computed when — never the additions inside one
//! element. Multiplication operand order is irrelevant (IEEE-754 `a*b`
//! is bitwise equal to `b*a`), which the kernels exploit freely.
//!
//! Zero-skip flags mirror the reference exactly: `affine_backward_input`
//! and the weight half of `affine_backward_params` skip `d == 0.0`
//! contributions (a meaningful sparsity win after ReLU), while bias
//! gradients and the LoRA backward do not. Callers pick the matching
//! behaviour via `skip_zero_a`.
//!
//! # Determinism under threads
//!
//! The only parallel kernel is [`gemm_tn`], which splits the *output*
//! rows into disjoint chunks via `par_chunks_mut`; every output element
//! is still produced by exactly one task running the full e-loop in
//! ascending order, so results are byte-identical at any thread count.

use mhd_obs::{StatCell, StatTimer};
use rayon::prelude::*;

// Per-kernel wall-clock cells, reported in the RUN_MANIFEST "kernels"
// section. Cells are static atomics: with tracing disabled each timer is
// one relaxed load, cheap enough to leave in the innermost batched paths.
static T_GEMM_NT: StatCell = StatCell::new("nn.gemm_nt");
static T_GEMM_NT_RELU: StatCell = StatCell::new("nn.gemm_nt_relu");
static T_GEMM_NT_BIAS_AFTER: StatCell = StatCell::new("nn.gemm_nt_bias_after");
static T_GEMM_NT_SCALED_ACC: StatCell = StatCell::new("nn.gemm_nt_scaled_acc");
static T_GEMM_NN: StatCell = StatCell::new("nn.gemm_nn");
static T_GEMM_TN: StatCell = StatCell::new("nn.gemm_tn");
static T_COLSUM: StatCell = StatCell::new("nn.colsum_acc");
static WS_FRESH: StatCell = StatCell::new("nn.workspace.alloc");
static WS_REUSE: StatCell = StatCell::new("nn.workspace.reuse");

/// Minimum multiply-accumulate count before [`gemm_tn`] fans out across
/// the rayon pool. Below this, thread wake-up costs more than the math.
const PAR_MIN_MACS: usize = 1 << 21;

/// Core NT kernel: `acc(i,j) = init(j) + Σ_p a[i·k+p] · b[j·k+p]`, with
/// the per-element p-loop sequential (reference accumulation order) and
/// `emit(i·n+j, j, acc)` called exactly once per output element.
///
/// Cache strategy: B (n×k, the weight layout) is packed once into a
/// k-major scratch so the p-loop becomes a vectorizable width-n row axpy
/// against a row-resident accumulator. Every output element still starts
/// at `init(j)` and accumulates its products in ascending p order — the
/// packing reorders *memory*, never any element's additions — so results
/// stay bit-identical to the scalar dot-form reference.
fn gemm_nt_with<I, E>(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, init: I, emit: E)
where
    I: Fn(usize) -> f32,
    E: FnMut(usize, usize, f32),
{
    debug_assert!(b.len() >= n * k, "b too short for n×k");
    let bt = pack_b_nt(b, k, n);
    gemm_nt_packed_with(a, &bt, m, k, n, init, emit);
}

/// Pack an n×k row-major weight matrix (the [`crate::tensor::Tensor`]
/// layout the NT kernels take as B) into the k-major scratch layout the
/// packed kernels consume: `bt[p·n + j] = b[j·k + p]`.
///
/// [`gemm_nt`] performs this pack internally on **every call** (~45 KB
/// for the survey's 178×64 MLP layer); serving paths that reuse the same
/// weights pack once with this function and call the `*_packed` kernel
/// variants instead, which is bit-identical by construction — the packed
/// core is the same code the per-call path runs after its own pack.
pub fn pack_b_nt(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    debug_assert!(b.len() >= n * k, "b too short for n×k");
    let mut bt = vec![0.0f32; k * n];
    for (j, brow) in b.chunks_exact(k).take(n).enumerate() {
        for (p, &bv) in brow.iter().enumerate() {
            bt[p * n + j] = bv;
        }
    }
    bt
}

/// Packed-B core of [`gemm_nt_with`]: identical loop structure and
/// accumulation order, with the k-major pack (`bt`, from [`pack_b_nt`])
/// supplied by the caller instead of rebuilt per call.
fn gemm_nt_packed_with<I, E>(
    a: &[f32],
    bt: &[f32],
    m: usize,
    k: usize,
    n: usize,
    init: I,
    mut emit: E,
) where
    I: Fn(usize) -> f32,
    E: FnMut(usize, usize, f32),
{
    debug_assert!(a.len() >= m * k, "a too short for m×k");
    debug_assert!(bt.len() >= k * n, "bt too short for k×n");
    let mut acc = vec![0.0f32; n];
    for i in 0..m {
        for (j, aj) in acc.iter_mut().enumerate() {
            *aj = init(j);
        }
        let arow = &a[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            let btrow = &bt[p * n..(p + 1) * n];
            for (o, &bv) in acc.iter_mut().zip(btrow) {
                *o += av * bv;
            }
        }
        for (j, &val) in acc.iter().enumerate() {
            emit(i * n + j, j, val);
        }
    }
}

/// `out = A·Bᵀ (+ bias broadcast over rows)`: A is m×k row-major, B is
/// n×k row-major (n rows of weights, as [`crate::tensor::Tensor`]
/// stores them), out is m×n. With `bias`, each accumulator *starts* at
/// `bias[j]` — the `linalg::affine` convention.
pub fn gemm_nt(a: &[f32], b: &[f32], bias: Option<&[f32]>, m: usize, k: usize, n: usize, out: &mut [f32]) {
    let _t = StatTimer::start(&T_GEMM_NT);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    match bias {
        Some(bias) => {
            debug_assert_eq!(bias.len(), n, "bias must have n entries");
            gemm_nt_with(a, b, m, k, n, |j| bias[j], |idx, _, acc| out[idx] = acc);
        }
        None => gemm_nt_with(a, b, m, k, n, |_| 0.0, |idx, _, acc| out[idx] = acc),
    }
}

/// [`gemm_nt`] with the fused bias + ReLU epilogue: writes
/// `max(acc, 0)` into `out` and the activation mask (acc > 0) into
/// `mask`, replacing a separate `relu_inplace` pass over the batch.
pub fn gemm_nt_relu(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    mask: &mut [bool],
) {
    let _t = StatTimer::start(&T_GEMM_NT_RELU);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    debug_assert_eq!(mask.len(), m * n, "mask must be m×n");
    debug_assert_eq!(bias.len(), n, "bias must have n entries");
    gemm_nt_with(a, b, m, k, n, |j| bias[j], |idx, _, acc| {
        let active = acc > 0.0;
        mask[idx] = active;
        out[idx] = if active { acc } else { 0.0 };
    });
}

/// [`gemm_nt`] over a weight matrix already packed with [`pack_b_nt`]:
/// skips the per-call pack + scratch allocation, bit-identical output.
pub fn gemm_nt_packed(
    a: &[f32],
    bt: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let _t = StatTimer::start(&T_GEMM_NT);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    match bias {
        Some(bias) => {
            debug_assert_eq!(bias.len(), n, "bias must have n entries");
            gemm_nt_packed_with(a, bt, m, k, n, |j| bias[j], |idx, _, acc| out[idx] = acc);
        }
        None => gemm_nt_packed_with(a, bt, m, k, n, |_| 0.0, |idx, _, acc| out[idx] = acc),
    }
}

/// [`gemm_nt_relu`] over a weight matrix already packed with
/// [`pack_b_nt`]: skips the per-call pack, bit-identical output.
#[allow(clippy::too_many_arguments)] // kernel signature mirrors gemm_nt_relu
pub fn gemm_nt_relu_packed(
    a: &[f32],
    bt: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    mask: &mut [bool],
) {
    let _t = StatTimer::start(&T_GEMM_NT_RELU);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    debug_assert_eq!(mask.len(), m * n, "mask must be m×n");
    debug_assert_eq!(bias.len(), n, "bias must have n entries");
    gemm_nt_packed_with(a, bt, m, k, n, |j| bias[j], |idx, _, acc| {
        let active = acc > 0.0;
        mask[idx] = active;
        out[idx] = if active { acc } else { 0.0 };
    });
}

/// `out[i·n+j] = bias[j] + Σ_p a·b`: the accumulator starts at 0 and the
/// bias is added *once at the end* — the `LoraAdapter::forward` base-path
/// convention, which is not bit-identical to bias-first `affine` when
/// the sum overflows into different rounding.
pub fn gemm_nt_bias_after(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let _t = StatTimer::start(&T_GEMM_NT_BIAS_AFTER);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    debug_assert_eq!(bias.len(), n, "bias must have n entries");
    gemm_nt_with(a, b, m, k, n, |_| 0.0, |idx, j, acc| out[idx] = bias[j] + acc);
}

/// `out[i·n+j] += scale · (Σ_p a·b)`: the LoRA low-rank update epilogue
/// (`out[i] += scaling * acc` in the scalar reference).
pub fn gemm_nt_scaled_acc(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    scale: f32,
    out: &mut [f32],
) {
    let _t = StatTimer::start(&T_GEMM_NT_SCALED_ACC);
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    gemm_nt_with(a, b, m, k, n, |_| 0.0, |idx, _, acc| out[idx] += scale * acc);
}

/// `out += A·B` in axpy form: A is m×k, B is k×n, both row-major;
/// `out[i·n+j] += Σ_p a[i·k+p] · b[p·n+j]` with the p-loop outermost per
/// row so each output element accumulates in ascending p order — the
/// order `affine_backward_input` uses (p ≡ the reference's `i`).
///
/// `skip_zero_a` skips whole p-iterations when `a[i·k+p] == 0.0`,
/// mirroring the reference's `if di == 0.0 { continue; }` (exact-zero
/// skips never change the bits of the remaining sum).
pub fn gemm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32], skip_zero_a: bool) {
    let _t = StatTimer::start(&T_GEMM_NN);
    debug_assert!(a.len() >= m * k, "a too short for m×k");
    debug_assert!(b.len() >= k * n, "b too short for k×n");
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = arow[p];
            if skip_zero_a && av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += AᵀB` over `rows` stacked examples: A is rows×m, B is rows×n,
/// out is m×n; `out[i·n+j] += Σ_e a[e·m+i] · b[e·n+j]` with the e-loop
/// ascending — the per-entry example order `affine_backward_params`
/// produces when called once per example of a minibatch.
///
/// `skip_zero_a` mirrors the reference's `if di == 0.0 { continue; }`
/// on the weight-gradient half.
///
/// Parallelism: above [`PAR_MIN_MACS`] multiply-adds the *output* rows
/// are split into disjoint chunks across the rayon pool. Each output
/// element is still produced by exactly one task running the full
/// ascending e-loop, so the result is byte-identical at any `--jobs`.
pub fn gemm_tn(a: &[f32], b: &[f32], rows: usize, m: usize, n: usize, out: &mut [f32], skip_zero_a: bool) {
    let _t = StatTimer::start(&T_GEMM_TN);
    debug_assert!(a.len() >= rows * m, "a too short for rows×m");
    debug_assert!(b.len() >= rows * n, "b too short for rows×n");
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    let macs = rows.saturating_mul(m).saturating_mul(n);
    let threads = rayon::current_num_threads();
    if macs >= PAR_MIN_MACS && threads > 1 && m > 1 {
        let rows_per_chunk = m.div_ceil(threads.min(m));
        out.par_chunks_mut(rows_per_chunk * n).enumerate().for_each(|(ci, chunk)| {
            gemm_tn_block(a, b, rows, m, n, ci * rows_per_chunk, chunk, skip_zero_a);
        });
    } else {
        gemm_tn_block(a, b, rows, m, n, 0, out, skip_zero_a);
    }
}

/// Serial body of [`gemm_tn`] for the output-row window starting at
/// `i0` (as many rows as `out_block` holds).
fn gemm_tn_block(
    a: &[f32],
    b: &[f32],
    rows: usize,
    m: usize,
    n: usize,
    i0: usize,
    out_block: &mut [f32],
    skip_zero_a: bool,
) {
    if n == 0 {
        return;
    }
    let block_rows = (out_block.len() / n).min(m.saturating_sub(i0));
    for e in 0..rows {
        let arow = &a[e * m..(e + 1) * m];
        let brow = &b[e * n..(e + 1) * n];
        for bi in 0..block_rows {
            let av = arow[i0 + bi];
            if skip_zero_a && av == 0.0 {
                continue;
            }
            let orow = &mut out_block[bi * n..(bi + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out[j] += Σ_e a[e·cols+j]` in ascending e order: the batched bias
/// gradient (`grad_b[i] += d[i]` once per example, no zero-skip).
pub fn colsum_acc(a: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    let _t = StatTimer::start(&T_COLSUM);
    debug_assert!(a.len() >= rows * cols, "a too short for rows×cols");
    debug_assert_eq!(out.len(), cols, "out must have cols entries");
    for e in 0..rows {
        let arow = &a[e * cols..(e + 1) * cols];
        for (o, &v) in out.iter_mut().zip(arow) {
            *o += v;
        }
    }
}

/// Pool of reusable scratch buffers for the batched training paths.
///
/// Buffers are checked out with [`Workspace::zeros`] / [`Workspace::mask`]
/// (always fully reinitialised, so reuse can never leak stale values into
/// the math) and returned with [`Workspace::recycle`] /
/// [`Workspace::recycle_mask`]. Capacity is retained across batches, so
/// steady-state training performs no heap allocation in the hot path.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    f32s: Vec<Vec<f32>>,
    masks: Vec<Vec<bool>>,
}

impl Workspace {
    /// An empty pool; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out an f32 buffer of exactly `len` zeros.
    pub fn zeros(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match self.f32s.pop() {
            Some(b) => {
                WS_REUSE.bump();
                b
            }
            None => {
                WS_FRESH.bump();
                Vec::new()
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Check out a bool buffer of exactly `len` `false`s.
    pub fn mask(&mut self, len: usize) -> Vec<bool> {
        let mut buf = match self.masks.pop() {
            Some(b) => {
                WS_REUSE.bump();
                b
            }
            None => {
                WS_FRESH.bump();
                Vec::new()
            }
        };
        buf.clear();
        buf.resize(len, false);
        buf
    }

    /// Return an f32 buffer to the pool, keeping its capacity.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        self.f32s.push(buf);
    }

    /// Return a bool buffer to the pool, keeping its capacity.
    pub fn recycle_mask(&mut self, buf: Vec<bool>) {
        self.masks.push(buf);
    }
}

/// Pack a slice of equal-length example rows into one row-major
/// `rows.len() × width` activation matrix (the front half of every
/// batched `train_batch`).
pub fn pack_rows(rows: &[Vec<f32>], width: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), rows.len() * width, "out must be rows×width");
    for (e, row) in rows.iter().enumerate() {
        debug_assert_eq!(row.len(), width, "row width mismatch");
        out[e * width..(e + 1) * width].copy_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{affine, affine_backward_input, affine_backward_params, relu_inplace};

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.7 - (n as f32) * 0.3).sin() * scale).collect()
    }

    #[test]
    fn gemm_nt_matches_affine_rowwise() {
        let (m, k, n) = (5, 7, 9); // deliberately not tile multiples
        let a = seq(m * k, 1.3);
        let w = seq(n * k, 0.9);
        let bias = seq(n, 0.2);
        let mut out = vec![0.0f32; m * n];
        gemm_nt(&a, &w, Some(&bias), m, k, n, &mut out);
        let mut reference = vec![0.0f32; m * n];
        for e in 0..m {
            affine(&w, &bias, &a[e * k..(e + 1) * k], n, k, &mut reference[e * n..(e + 1) * n]);
        }
        assert_eq!(out, reference, "gemm_nt must be bit-identical to affine");
    }

    #[test]
    fn gemm_nt_relu_fuses_mask() {
        let (m, k, n) = (3, 6, 5);
        let a = seq(m * k, 2.0);
        let w = seq(n * k, 1.1);
        let bias = seq(n, 0.1);
        let mut out = vec![0.0f32; m * n];
        let mut mask = vec![false; m * n];
        gemm_nt_relu(&a, &w, &bias, m, k, n, &mut out, &mut mask);
        let mut plain = vec![0.0f32; m * n];
        gemm_nt(&a, &w, Some(&bias), m, k, n, &mut plain);
        let mut mask2 = Vec::new();
        relu_inplace(&mut plain, &mut mask2);
        assert_eq!(out, plain);
        assert_eq!(mask, mask2);
    }

    #[test]
    fn gemm_nn_matches_backward_input() {
        let (m, k, n) = (4, 5, 7);
        let mut d = seq(m * k, 1.0);
        d[3] = 0.0; // exercise the zero-skip
        d[8] = 0.0;
        let w = seq(k * n, 0.8);
        let mut out = vec![0.0f32; m * n];
        gemm_nn(&d, &w, m, k, n, &mut out, true);
        let mut reference = vec![0.0f32; m * n];
        for e in 0..m {
            affine_backward_input(&w, &d[e * k..(e + 1) * k], k, n, &mut reference[e * n..(e + 1) * n]);
        }
        assert_eq!(out, reference, "gemm_nn must be bit-identical to affine_backward_input");
    }

    #[test]
    fn gemm_tn_and_colsum_match_backward_params() {
        let (bsz, m, n) = (6, 5, 8); // d is bsz×m, x is bsz×n
        let mut d = seq(bsz * m, 1.0);
        d[2] = 0.0;
        d[17] = 0.0;
        let x = seq(bsz * n, 0.6);
        let mut wgrad = vec![0.0f32; m * n];
        let mut bgrad = vec![0.0f32; m];
        gemm_tn(&d, &x, bsz, m, n, &mut wgrad, true);
        colsum_acc(&d, bsz, m, &mut bgrad);
        let mut refw = vec![0.0f32; m * n];
        let mut refb = vec![0.0f32; m];
        for e in 0..bsz {
            affine_backward_params(
                &mut refw,
                &mut refb,
                &d[e * m..(e + 1) * m],
                &x[e * n..(e + 1) * n],
                m,
                n,
            );
        }
        assert_eq!(wgrad, refw, "gemm_tn must be bit-identical to affine_backward_params");
        assert_eq!(bgrad, refb, "colsum_acc must match the bias-gradient half");
    }

    #[test]
    fn gemm_tn_parallel_chunking_is_bit_identical() {
        // Big enough to cross PAR_MIN_MACS: 128×130×130 ≈ 2.2M MACs.
        let (rows, m, n) = (128, 130, 130);
        let a = seq(rows * m, 0.5);
        let b = seq(rows * n, 0.4);
        let mut serial = vec![0.0f32; m * n];
        gemm_tn_block(&a, &b, rows, m, n, 0, &mut serial, false);
        let mut par = vec![0.0f32; m * n];
        gemm_tn(&a, &b, rows, m, n, &mut par, false);
        assert_eq!(par, serial);
    }

    #[test]
    fn packed_kernels_bit_identical_to_per_call_pack() {
        let (m, k, n) = (5, 7, 9);
        let a = seq(m * k, 1.3);
        let w = seq(n * k, 0.9);
        let bias = seq(n, 0.2);
        let bt = pack_b_nt(&w, k, n);
        let mut plain = vec![0.0f32; m * n];
        gemm_nt(&a, &w, Some(&bias), m, k, n, &mut plain);
        let mut packed = vec![0.0f32; m * n];
        gemm_nt_packed(&a, &bt, Some(&bias), m, k, n, &mut packed);
        assert_eq!(plain, packed, "gemm_nt_packed must match gemm_nt bit-for-bit");
        let mut plain_r = vec![0.0f32; m * n];
        let mut mask_r = vec![false; m * n];
        gemm_nt_relu(&a, &w, &bias, m, k, n, &mut plain_r, &mut mask_r);
        let mut packed_r = vec![0.0f32; m * n];
        let mut mask_p = vec![false; m * n];
        gemm_nt_relu_packed(&a, &bt, &bias, m, k, n, &mut packed_r, &mut mask_p);
        assert_eq!(plain_r, packed_r);
        assert_eq!(mask_r, mask_p);
    }

    #[test]
    fn workspace_reuses_capacity_and_reinitialises() {
        let mut ws = Workspace::new();
        let mut buf = ws.zeros(8);
        buf.iter_mut().for_each(|v| *v = 3.5);
        let cap = buf.capacity();
        ws.recycle(buf);
        let buf2 = ws.zeros(4);
        assert!(buf2.capacity() >= cap.min(4));
        assert!(buf2.iter().all(|&v| v == 0.0), "recycled buffers must come back zeroed");
        let mask = ws.mask(5);
        assert!(mask.iter().all(|&b| !b));
    }
}
