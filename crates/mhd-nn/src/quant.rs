//! Int8 quantized inference path.
//!
//! Inference-only quantization of the trained f32 models: per-row
//! (per-output-channel) symmetric scales, quantize-once weight packing,
//! and widened-accumulation kernels ([`gemm_nt_i8`]) with fused
//! dequant + bias + ReLU epilogues mirroring [`crate::gemm`]. Training
//! stays f32; the [`Precision`] switch selects the predict path in
//! `mhd-models` / `mhd-core`.
//!
//! # Scale scheme
//!
//! Each weight row (one output channel) gets an independent symmetric
//! scale `s = max|w| / 127`; values quantize as
//! `q = clamp(round(w / s), -127, 127)`. Activations are quantized the
//! same way per *batch* row at call time (dynamic quantization) — an
//! m×k pass, negligible next to the m×k×n multiply. All-zero rows get
//! `s = 1.0` so scales are always strictly positive. The round-trip
//! error per element is bounded by `s / 2` (pinned by
//! `tests/quant_props.rs`); the dequantized product
//! `acc · s_a · s_w` therefore carries a relative error of roughly
//! `1/254` per factor.
//!
//! # Determinism
//!
//! Accumulation is `i32` over i8×i8 products (each at most 127² =
//! 16 129), so any `k ≤ 2^17` sums exactly without overflow — integer
//! addition is associative, making results byte-identical at any thread
//! count *by construction*, a stronger guarantee than the f32 kernels'
//! ordered-sum contract.
//!
//! # Why it is faster
//!
//! Two compounding effects. First, the f32 [`crate::gemm::gemm_nt`]
//! allocates and packs the weight matrix k-major on **every call**; at
//! serving micro-batch sizes that pack is a large fraction of the work.
//! The quantized path quantizes weights once, so a predict call pays
//! only the integer multiply plus the cheap dynamic activation
//! quantization, on a 4× smaller weight footprint. Second, the f32
//! kernels' bit-identity contract forbids reassociating each output's
//! k-sum, which blocks SIMD reduction — but the i32 accumulation here
//! is *exact*, so [`gemm_nt_i8`] runs in dot-product form and lets the
//! compiler vectorize the reduction. Products are formed in i16
//! (`|q| ≤ 127` ⇒ `|q·q| ≤ 16 129`, never overflowing i16) and widened
//! to i32 — the multiply-widen-add shape that lowers to packed 16-bit
//! multiply-accumulate even on baseline x86-64.

use crate::checkpoint::{self, Checkpoint, CheckpointError, Writer};
use crate::encoder::EncoderConfig;
use crate::linalg::{dot, softmax};
use mhd_obs::{StatCell, StatTimer};
use rayon::prelude::*;

static T_GEMM_NT_I8: StatCell = StatCell::new("nn.gemm_nt_i8");
static T_QUANTIZE_ROWS: StatCell = StatCell::new("nn.quantize_rows");

/// Numeric precision of a model's predict path. Training is always f32;
/// `Int8` routes inference through the quantized wrappers in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision inference on the [`crate::gemm`] kernels.
    #[default]
    F32,
    /// Int8 inference: per-row symmetric quantization, i32 accumulation.
    Int8,
}

impl Precision {
    /// Parse a CLI-facing name (`"f32"` / `"int8"`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "int8" | "i8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// CLI-facing name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Symmetric per-row scale: `max|x| / 127`, or `1.0` for an all-zero
/// (or all-non-finite) row so scales are always strictly positive.
pub fn row_scale(row: &[f32]) -> f32 {
    // |x| is non-negative, and IEEE-754 ordering on non-negative floats
    // matches the integer ordering of their bit patterns — so the
    // max|x| reduction can run over `bits & !sign` as a u32 max, which
    // (unlike a float max with NaN semantics) the compiler vectorizes.
    let max_bits = row.iter().fold(0u32, |m, &v| m.max(v.to_bits() & 0x7fff_ffff));
    let max = f32::from_bits(max_bits);
    if max.is_finite() {
        if max > 0.0 {
            max / 127.0
        } else {
            1.0
        }
    } else {
        // A NaN or ±∞ won the integer fold. Re-run the reference float
        // fold, whose `>` comparison ignores NaNs (rare path; keeps the
        // documented semantics: NaNs never set the scale, any ∞ trips
        // the 1.0 fallback).
        let max = row.iter().fold(0.0f32, |m, &v| if v.abs() > m { v.abs() } else { m });
        if max > 0.0 && max.is_finite() {
            max / 127.0
        } else {
            1.0
        }
    }
}

/// Quantize one value under `scale`: `clamp(round(v / scale), -127, 127)`.
/// Saturates at ±127 (the symmetric range; −128 is never produced) and
/// maps non-finite inputs to 0 via Rust's saturating float→int cast.
#[inline]
pub fn quantize_value(v: f32, scale: f32) -> i8 {
    quantize_value_wide(v, scale) as i8
}

/// [`quantize_value`] carried in an i16 lane — same int8-range value,
/// but in the width the serving kernels consume (see [`gemm_nt_i8`]).
#[inline]
fn quantize_value_wide(v: f32, scale: f32) -> i16 {
    let t = v / scale;
    // Round half away from zero by shifting ±0.5 (copysign, pure bit
    // ops) and truncating via the `as` cast — same result as
    // `f32::round`, but it stays inline (baseline x86-64 lowers
    // `round()` to a libm call, which dominated the whole quantize
    // pass). Saturation happens in the float domain (`clamp` is two
    // packed min/max ops and propagates NaN), so the final cast's
    // defined semantics only ever handle NaN → 0.
    let shifted = t + 0.5f32.copysign(t);
    shifted.clamp(-127.0, 127.0) as i16
}

/// [`quantize_value_wide`] restructured for the vectorized row path:
///
/// * the division is strength-reduced to a multiply by the row's
///   precomputed reciprocal scale (`divps` is the one unpipelined
///   instruction in the pass), costing ≤ 1 ulp on the pre-rounding
///   quotient — within the documented `s/2` round-trip bound, with the
///   ±127 saturation points absorbed by `clamp`;
/// * the float→int conversion runs by exponent alignment instead of an
///   `as` cast: adding `1.5·2²³` forces the clamped value into the
///   `[2²³, 2²⁴)` binade, so the rounded integer lands in the low
///   mantissa bits and a bit-pattern subtract recovers it. Rust's
///   saturating float→i16 cast must handle NaN and out-of-range lanes,
///   which keeps the loop scalar (`cvttss2si` per element); the
///   alignment form is plain `addps` + integer ops and vectorizes,
///   cutting the quantize pass ~2.5×.
///
/// Ties round to nearest-even (the FPU default) rather than
/// [`quantize_value`]'s half-away-from-zero — both are nearest
/// roundings, so every property of the scheme (error ≤ `s/2`, ±127
/// saturation, NaN → 0) is preserved; only exact `.5` quotients map one
/// step differently.
#[inline]
fn quantize_value_recip(v: f32, inv_scale: f32) -> i16 {
    let c = (v * inv_scale).clamp(-127.0, 127.0);
    // clamp propagates NaN; squash it to 0 before the bit trick (the
    // compare + select vectorizes, unlike the cast's NaN handling).
    let c = if c.is_nan() { 0.0 } else { c };
    let aligned = c + 12_582_912.0f32; // 1.5·2²³
    (aligned.to_bits() as i32).wrapping_sub(0x4B40_0000) as i16
}

/// Quantize one row under `s` into pre-sized `qrow`. Uses the
/// reciprocal fast path when `1/s` is finite (always, for scales
/// produced by [`row_scale`] on normal inputs) and falls back to true
/// division when `s` is subnormal, where the reciprocal overflows.
#[inline]
fn quantize_row_wide(row: &[f32], s: f32, qrow: &mut [i16]) {
    let inv = 1.0 / s;
    if inv.is_finite() {
        for (qv, &v) in qrow.iter_mut().zip(row) {
            *qv = quantize_value_recip(v, inv);
        }
    } else {
        for (qv, &v) in qrow.iter_mut().zip(row) {
            *qv = quantize_value_wide(v, s);
        }
    }
}

/// Quantize `rows` rows of `cols` f32s into i8 with per-row scales.
/// Output buffers are cleared and refilled (capacity reused).
pub fn quantize_rows(src: &[f32], rows: usize, cols: usize, q: &mut Vec<i8>, scales: &mut Vec<f32>) {
    let _t = StatTimer::start(&T_QUANTIZE_ROWS);
    debug_assert!(src.len() >= rows * cols, "src too short for rows×cols");
    q.clear();
    q.resize(rows * cols, 0);
    scales.clear();
    scales.reserve(rows);
    for (row, qrow) in src.chunks_exact(cols).zip(q.chunks_exact_mut(cols)).take(rows) {
        let s = row_scale(row);
        scales.push(s);
        let inv = 1.0 / s;
        if inv.is_finite() {
            for (qv, &v) in qrow.iter_mut().zip(row) {
                *qv = quantize_value_recip(v, inv) as i8;
            }
        } else {
            for (qv, &v) in qrow.iter_mut().zip(row) {
                *qv = quantize_value(v, s);
            }
        }
    }
}

/// [`quantize_rows`] with the output carried in i16 lanes — the layout
/// the serving kernels consume. Values are identical to the i8 variant
/// (still int8-range); the wider lanes let [`gemm_nt_i8`]'s inner loop
/// lower to packed 16-bit multiply-accumulate without per-element
/// i8→i16 sign extension.
pub fn quantize_rows_i16(
    src: &[f32],
    rows: usize,
    cols: usize,
    q: &mut Vec<i16>,
    scales: &mut Vec<f32>,
) {
    let _t = StatTimer::start(&T_QUANTIZE_ROWS);
    debug_assert!(src.len() >= rows * cols, "src too short for rows×cols");
    q.clear();
    q.resize(rows * cols, 0);
    scales.clear();
    scales.reserve(rows);
    for (row, qrow) in src.chunks_exact(cols).zip(q.chunks_exact_mut(cols)).take(rows) {
        let s = row_scale(row);
        scales.push(s);
        quantize_row_wide(row, s, qrow);
    }
}

/// [`quantize_rows_i16`] straight from a slice of example vectors,
/// skipping the intermediate f32 pack the float path performs.
fn quantize_example_rows(xs: &[Vec<f32>], cols: usize, q: &mut Vec<i16>, scales: &mut Vec<f32>) {
    let _t = StatTimer::start(&T_QUANTIZE_ROWS);
    q.clear();
    q.resize(xs.len() * cols, 0);
    scales.clear();
    scales.reserve(xs.len());
    for (row, qrow) in xs.iter().zip(q.chunks_exact_mut(cols)) {
        debug_assert_eq!(row.len(), cols, "input dim mismatch");
        let s = row_scale(row);
        scales.push(s);
        quantize_row_wide(row, s, qrow);
    }
}

/// Int8 NT kernel with fused dequant + bias + optional ReLU epilogue:
///
/// `out[i·n+j] = epi(bias[j] + (Σ_p aq[i·k+p] · wq[j·k+p]) · a_scales[i] · w_scales[j])`
///
/// `aq` is the m×k row-major quantized activation matrix with one scale
/// per row; `wq` is the n×k row-major quantized weight matrix (the
/// [`crate::tensor::Tensor`] layout, one scale per output channel — see
/// [`QuantizedLinear`]). Both operands hold **int8-range values in i16
/// lanes**: the products then fit i16 exactly (`|q·q| ≤ 127² = 16 129`)
/// and the multiply-widen-add reduction lowers to packed 16-bit
/// multiply-accumulate (`pmaddwd`-class) even on baseline x86-64, with
/// no per-element sign-extension unpacking. The accumulation is pure
/// i32 — exact, hence order-independent — and the epilogue performs the
/// only float math, mirroring the bias-first + ReLU conventions of
/// [`crate::gemm::gemm_nt_relu`].
///
/// Each output channel is one dot product over the contiguous weight
/// row; the dot keeps eight vertical i32 accumulator lanes (see
/// [`dot_i16`]) so the reduction stays in full-width vector registers.
#[allow(clippy::too_many_arguments)] // kernel signature mirrors gemm.rs
pub fn gemm_nt_i8(
    aq: &[i16],
    a_scales: &[f32],
    wq: &[i16],
    w_scales: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    out: &mut [f32],
) {
    let _t = StatTimer::start(&T_GEMM_NT_I8);
    debug_assert!(aq.len() >= m * k, "aq too short for m×k");
    debug_assert!(wq.len() >= n * k, "wq too short for n×k");
    debug_assert_eq!(a_scales.len(), m, "one activation scale per row");
    debug_assert_eq!(w_scales.len(), n, "one weight scale per channel");
    debug_assert_eq!(out.len(), m * n, "out must be m×n");
    for ((arow, orow), &sa) in
        aq.chunks_exact(k).zip(out.chunks_exact_mut(n)).zip(a_scales).take(m)
    {
        match bias {
            Some(b) => {
                for (((o, wrow), &sw), &bj) in
                    orow.iter_mut().zip(wq.chunks_exact(k)).zip(w_scales).zip(b)
                {
                    let v = bj + (dot_i16(arow, wrow) as f32) * sa * sw;
                    *o = if relu && v <= 0.0 { 0.0 } else { v };
                }
            }
            None => {
                for ((o, wrow), &sw) in orow.iter_mut().zip(wq.chunks_exact(k)).zip(w_scales) {
                    let v = (dot_i16(arow, wrow) as f32) * sa * sw;
                    *o = if relu && v <= 0.0 { 0.0 } else { v };
                }
            }
        }
    }
}

/// Exact i32 dot product of two int8-range i16 slices.
///
/// Eight vertical i32 accumulator lanes over `[i16; 8]` blocks: the
/// fixed-width inner loop gives the compiler full 128-bit loads and a
/// packed multiply-widen-add body, where a flat `iter().zip()` fold over
/// a runtime-length slice only reaches half-width loads. Lane order of
/// the final horizontal sum is fixed by the code, so results stay
/// bit-identical across platforms (i32 addition is associative anyway).
#[inline]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    let (a8, a_tail) = a.as_chunks::<8>();
    let (b8, b_tail) = b.as_chunks::<8>();
    let mut lanes = [0i32; 8];
    for (pa, pb) in a8.iter().zip(b8) {
        for ((s, &x), &y) in lanes.iter_mut().zip(pa.iter()).zip(pb.iter()) {
            *s += i32::from(x) * i32::from(y);
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// One quantized linear layer: weights quantized per output channel
/// **once at build time**, so forward calls never pack or allocate
/// weight scratch (the f32 path's per-call cost). Weights stay in the
/// row-major [`crate::tensor::Tensor`] layout — [`gemm_nt_i8`] runs in
/// dot-product form, where each channel's row is already the contiguous
/// operand it needs. In memory the int8-range values sit in i16 lanes
/// (the kernel's operand width — still half the f32 footprint); on disk
/// checkpoints narrow them back to i8 losslessly.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    in_dim: usize,
    out_dim: usize,
    /// Quantized weights, row-major (`out_dim × in_dim`): `wq[j·in+p]`
    /// is channel `j`'s weight for input `p`. Int8-range, i16 lanes.
    wq: Vec<i16>,
    /// Per-output-channel scales, length `out_dim`.
    w_scales: Vec<f32>,
    /// f32 bias, length `out_dim` (zeros for bias-free layers).
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantize an `out_dim × in_dim` row-major f32 weight matrix (the
    /// [`crate::tensor::Tensor`] layout) plus bias.
    pub fn from_f32(w: &[f32], bias: &[f32], out_dim: usize, in_dim: usize) -> Self {
        debug_assert_eq!(w.len(), out_dim * in_dim, "weight shape mismatch");
        debug_assert_eq!(bias.len(), out_dim, "bias shape mismatch");
        let mut wq = Vec::with_capacity(out_dim * in_dim);
        let mut w_scales = Vec::with_capacity(out_dim);
        for row in w.chunks_exact(in_dim).take(out_dim) {
            let s = row_scale(row);
            w_scales.push(s);
            for &v in row {
                wq.push(quantize_value_wide(v, s));
            }
        }
        QuantizedLinear { in_dim, out_dim, wq, w_scales, bias: bias.to_vec() }
    }

    /// Rebuild from already-quantized parts (checkpoint load path).
    /// `wq` must be row-major `out_dim × in_dim`; the i8 values are
    /// widened into the kernel's i16 operand lanes.
    pub fn from_quantized_parts(
        wq: Vec<i8>,
        w_scales: Vec<f32>,
        bias: Vec<f32>,
        out_dim: usize,
        in_dim: usize,
    ) -> Result<Self, CheckpointError> {
        if wq.len() != in_dim * out_dim || w_scales.len() != out_dim || bias.len() != out_dim {
            return Err(CheckpointError::Malformed("quantized linear shape mismatch".to_string()));
        }
        let wq = wq.into_iter().map(i16::from).collect();
        Ok(QuantizedLinear { in_dim, out_dim, wq, w_scales, bias })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward `m` quantized rows (int8-range values in i16 lanes, as
    /// produced by [`quantize_rows_i16`]) through the layer, with the
    /// fused bias + ReLU epilogue when `relu`. `out` must be
    /// `m × out_dim`.
    pub fn forward(&self, aq: &[i16], a_scales: &[f32], m: usize, relu: bool, out: &mut [f32]) {
        gemm_nt_i8(
            aq,
            a_scales,
            &self.wq,
            &self.w_scales,
            Some(&self.bias),
            m,
            self.in_dim,
            self.out_dim,
            relu,
            out,
        );
    }

    /// Dequantized copy of the weights in the original `out_dim × in_dim`
    /// row-major layout — error-analysis/test hook, not a serving path.
    pub fn dequantized_weights(&self) -> Vec<f32> {
        let mut w = Vec::with_capacity(self.out_dim * self.in_dim);
        for (wrow, &s) in self.wq.chunks_exact(self.in_dim).zip(&self.w_scales) {
            for &qv in wrow {
                w.push(f32::from(qv) * s);
            }
        }
        w
    }

    /// Serialize under `prefix` into a checkpoint writer. The i16 lanes
    /// narrow back to i8 losslessly (values never leave [-127, 127]).
    pub fn write_checkpoint(&self, prefix: &str, w: &mut Writer) {
        let narrow: Vec<i8> = self.wq.iter().map(|&v| v as i8).collect();
        w.tensor_i8(&format!("{prefix}/wq"), self.out_dim, self.in_dim, &narrow);
        w.tensor_f32(&format!("{prefix}/w_scales"), 1, self.out_dim, &self.w_scales);
        w.tensor_f32(&format!("{prefix}/bias"), 1, self.out_dim, &self.bias);
    }

    /// Deserialize a layer written by [`QuantizedLinear::write_checkpoint`].
    /// Decodes straight from the checkpoint's zero-copy views: the i8
    /// payload widens into the kernel's i16 operand lanes in one pass,
    /// with no intermediate `Vec<i8>` — the borrowing load path that
    /// [`Checkpoint::map`] serves shard pools from.
    pub fn from_checkpoint(ck: &Checkpoint, prefix: &str) -> Result<Self, CheckpointError> {
        let wv = ck.view_i8(&format!("{prefix}/wq"))?;
        let (out_dim, in_dim) = (wv.rows, wv.cols);
        let wq: Vec<i16> = wv.i8_iter().map(i16::from).collect();
        let w_scales: Vec<f32> = ck.view_f32(&format!("{prefix}/w_scales"))?.f32_iter().collect();
        let bias: Vec<f32> = ck.view_f32(&format!("{prefix}/bias"))?.f32_iter().collect();
        if w_scales.len() != out_dim || bias.len() != out_dim {
            return Err(CheckpointError::Malformed("quantized linear shape mismatch".to_string()));
        }
        Ok(QuantizedLinear { in_dim, out_dim, wq, w_scales, bias })
    }
}

/// Int8 inference wrapper over a trained [`crate::mlp::Mlp`]. Build via
/// [`crate::mlp::Mlp::quantize`]; prediction APIs mirror the f32 model.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    input_dim: usize,
    hidden_dim: usize,
    n_classes: usize,
    l1: Option<QuantizedLinear>,
    l2: QuantizedLinear,
}

impl QuantizedMlp {
    /// Quantize the raw f32 parameters of an MLP (`hidden_dim = 0` means
    /// the linear model: `w1`/`b1` are ignored).
    pub fn from_parts(
        input_dim: usize,
        hidden_dim: usize,
        n_classes: usize,
        w1: &[f32],
        b1: &[f32],
        w2: &[f32],
        b2: &[f32],
    ) -> Self {
        let l1 = if hidden_dim > 0 {
            Some(QuantizedLinear::from_f32(w1, b1, hidden_dim, input_dim))
        } else {
            None
        };
        let l2_in = if hidden_dim > 0 { hidden_dim } else { input_dim };
        let l2 = QuantizedLinear::from_f32(w2, b2, n_classes, l2_in);
        QuantizedMlp { input_dim, hidden_dim, n_classes, l1, l2 }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Packed `bsz × n_classes` logits for a batch.
    fn logits_packed(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        let bsz = xs.len();
        let mut q = Vec::new();
        let mut s = Vec::new();
        quantize_example_rows(xs, self.input_dim, &mut q, &mut s);
        let mut logits = vec![0.0f32; bsz * self.n_classes];
        match &self.l1 {
            Some(l1) => {
                let mut h = vec![0.0f32; bsz * self.hidden_dim];
                l1.forward(&q, &s, bsz, true, &mut h);
                let mut hq = Vec::new();
                let mut hs = Vec::new();
                quantize_rows_i16(&h, bsz, self.hidden_dim, &mut hq, &mut hs);
                self.l2.forward(&hq, &hs, bsz, false, &mut logits);
            }
            None => self.l2.forward(&q, &s, bsz, false, &mut logits),
        }
        logits
    }

    /// Batched logits, one row per input.
    pub fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let logits = self.logits_packed(xs);
        logits.chunks_exact(self.n_classes).map(|r| r.to_vec()).collect()
    }

    /// Batched class probabilities (softmax over [`QuantizedMlp::forward_batch`]).
    pub fn predict_proba_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let logits = self.logits_packed(xs);
        logits.chunks_exact(self.n_classes).map(softmax).collect()
    }

    /// Single-example class probabilities.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        self.predict_proba_batch(std::slice::from_ref(&x.to_vec())).pop().unwrap_or_default()
    }

    /// Most probable class for one example.
    pub fn predict(&self, x: &[f32]) -> usize {
        crate::mlp::argmax(&self.predict_proba(x))
    }

    /// Serialize under `prefix` into a checkpoint writer.
    pub fn write_checkpoint(&self, prefix: &str, w: &mut Writer) {
        w.meta(&format!("{prefix}.kind"), "qmlp");
        w.meta(&format!("{prefix}.input_dim"), &checkpoint::usize_meta(self.input_dim));
        w.meta(&format!("{prefix}.hidden_dim"), &checkpoint::usize_meta(self.hidden_dim));
        w.meta(&format!("{prefix}.n_classes"), &checkpoint::usize_meta(self.n_classes));
        if let Some(l1) = &self.l1 {
            l1.write_checkpoint(&format!("{prefix}/l1"), w);
        }
        self.l2.write_checkpoint(&format!("{prefix}/l2"), w);
    }

    /// Deserialize a model written by [`QuantizedMlp::write_checkpoint`].
    pub fn from_checkpoint(ck: &Checkpoint, prefix: &str) -> Result<Self, CheckpointError> {
        let input_dim = ck.meta_usize(&format!("{prefix}.input_dim"))?;
        let hidden_dim = ck.meta_usize(&format!("{prefix}.hidden_dim"))?;
        let n_classes = ck.meta_usize(&format!("{prefix}.n_classes"))?;
        let l1 = if hidden_dim > 0 {
            Some(QuantizedLinear::from_checkpoint(ck, &format!("{prefix}/l1"))?)
        } else {
            None
        };
        let l2 = QuantizedLinear::from_checkpoint(ck, &format!("{prefix}/l2"))?;
        Ok(QuantizedMlp { input_dim, hidden_dim, n_classes, l1, l2 })
    }
}

/// Int8 inference wrapper over a trained [`crate::encoder::Encoder`].
/// Build via [`crate::encoder::Encoder::quantize`].
///
/// The three heavy GEMMs (attention projection `W e_t`, head `w1`, head
/// `w2`) run on [`gemm_nt_i8`]; the embedding gather, tanh, attention
/// softmax, and pooling stay f32 — they are O(tokens·d) next to the
/// O(tokens·d²) projection, and keeping them exact preserves the
/// attention distribution's shape.
#[derive(Debug, Clone)]
pub struct QuantizedEncoder {
    cfg: EncoderConfig,
    /// f32 embedding table, `vocab_size × embed_dim`.
    emb: Vec<f32>,
    /// Attention projection `W` (d→d, bias-free).
    att_w: QuantizedLinear,
    /// Attention query vector `v`, length d.
    att_v: Vec<f32>,
    /// Head hidden layer (d→h, fused ReLU).
    l1: QuantizedLinear,
    /// Head output layer (h→k).
    l2: QuantizedLinear,
}

impl QuantizedEncoder {
    /// Quantize the raw f32 parameters of an encoder.
    #[allow(clippy::too_many_arguments)] // flat parameter pass-through from Encoder::quantize
    pub fn from_parts(
        cfg: EncoderConfig,
        emb: &[f32],
        att_w: &[f32],
        att_v: &[f32],
        w1: &[f32],
        b1: &[f32],
        w2: &[f32],
        b2: &[f32],
    ) -> Self {
        let d = cfg.embed_dim;
        let zero_bias = vec![0.0f32; d];
        QuantizedEncoder {
            cfg,
            emb: emb.to_vec(),
            att_w: QuantizedLinear::from_f32(att_w, &zero_bias, d, d),
            att_v: att_v.to_vec(),
            l1: QuantizedLinear::from_f32(w1, b1, cfg.hidden_dim, d),
            l2: QuantizedLinear::from_f32(w2, b2, cfg.n_classes, cfg.hidden_dim),
        }
    }

    /// Configuration of the source encoder.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Attention-pooled representation of one document (pure per
    /// example, so batches fan out across the rayon pool with
    /// deterministic ordered collection).
    fn attention_pooled(&self, tokens: &[u32]) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        let toks: Vec<u32> = tokens
            .iter()
            .copied()
            .filter(|&t| (t as usize) < self.cfg.vocab_size)
            .take(self.cfg.max_len)
            .collect();
        let n = toks.len();
        if n == 0 {
            return vec![0.0; d];
        }
        let mut e_flat = vec![0.0f32; n * d];
        for (t, &tok) in toks.iter().enumerate() {
            let row = tok as usize * d;
            e_flat[t * d..(t + 1) * d].copy_from_slice(&self.emb[row..row + d]);
        }
        let mut q = Vec::new();
        let mut s = Vec::new();
        quantize_rows_i16(&e_flat, n, d, &mut q, &mut s);
        let mut u_flat = vec![0.0f32; n * d];
        self.att_w.forward(&q, &s, n, false, &mut u_flat);
        for v in &mut u_flat {
            *v = v.tanh();
        }
        let scores: Vec<f32> = u_flat.chunks_exact(d).map(|r| dot(&self.att_v, r)).collect();
        let alpha = softmax(&scores);
        let mut pooled = vec![0.0f32; d];
        for (a, e) in alpha.iter().zip(e_flat.chunks_exact(d)) {
            for (p, &ej) in pooled.iter_mut().zip(e) {
                *p += a * ej;
            }
        }
        pooled
    }

    /// Packed `bsz × n_classes` logits for a batch of documents.
    fn logits_packed(&self, docs: &[Vec<u32>]) -> Vec<f32> {
        let bsz = docs.len();
        let (d, hdim, k) = (self.cfg.embed_dim, self.cfg.hidden_dim, self.cfg.n_classes);
        let pooled: Vec<Vec<f32>> = docs.par_iter().map(|doc| self.attention_pooled(doc)).collect();
        let mut q = Vec::new();
        let mut s = Vec::new();
        quantize_example_rows(&pooled, d, &mut q, &mut s);
        let mut h = vec![0.0f32; bsz * hdim];
        self.l1.forward(&q, &s, bsz, true, &mut h);
        let mut hq = Vec::new();
        let mut hs = Vec::new();
        quantize_rows_i16(&h, bsz, hdim, &mut hq, &mut hs);
        let mut logits = vec![0.0f32; bsz * k];
        self.l2.forward(&hq, &hs, bsz, false, &mut logits);
        logits
    }

    /// Batched logits, one row per document.
    pub fn forward_batch(&self, docs: &[Vec<u32>]) -> Vec<Vec<f32>> {
        if docs.is_empty() {
            return Vec::new();
        }
        let logits = self.logits_packed(docs);
        logits.chunks_exact(self.cfg.n_classes).map(|r| r.to_vec()).collect()
    }

    /// Batched class probabilities.
    pub fn predict_proba_batch(&self, docs: &[Vec<u32>]) -> Vec<Vec<f32>> {
        if docs.is_empty() {
            return Vec::new();
        }
        let logits = self.logits_packed(docs);
        logits.chunks_exact(self.cfg.n_classes).map(softmax).collect()
    }

    /// Single-document class probabilities.
    pub fn predict_proba(&self, tokens: &[u32]) -> Vec<f32> {
        self.predict_proba_batch(std::slice::from_ref(&tokens.to_vec())).pop().unwrap_or_default()
    }

    /// Most probable class for one document.
    pub fn predict(&self, tokens: &[u32]) -> usize {
        crate::mlp::argmax(&self.predict_proba(tokens))
    }

    /// Serialize under `prefix` into a checkpoint writer.
    pub fn write_checkpoint(&self, prefix: &str, w: &mut Writer) {
        w.meta(&format!("{prefix}.kind"), "qencoder");
        w.meta(&format!("{prefix}.vocab_size"), &checkpoint::usize_meta(self.cfg.vocab_size));
        w.meta(&format!("{prefix}.embed_dim"), &checkpoint::usize_meta(self.cfg.embed_dim));
        w.meta(&format!("{prefix}.hidden_dim"), &checkpoint::usize_meta(self.cfg.hidden_dim));
        w.meta(&format!("{prefix}.n_classes"), &checkpoint::usize_meta(self.cfg.n_classes));
        w.meta(&format!("{prefix}.max_len"), &checkpoint::usize_meta(self.cfg.max_len));
        w.meta(&format!("{prefix}.lr"), &checkpoint::f32_meta(self.cfg.lr));
        w.meta(&format!("{prefix}.seed"), &checkpoint::u64_meta(self.cfg.seed));
        w.tensor_f32(&format!("{prefix}/emb"), self.cfg.vocab_size, self.cfg.embed_dim, &self.emb);
        w.tensor_f32(&format!("{prefix}/att_v"), 1, self.cfg.embed_dim, &self.att_v);
        self.att_w.write_checkpoint(&format!("{prefix}/att_w"), w);
        self.l1.write_checkpoint(&format!("{prefix}/l1"), w);
        self.l2.write_checkpoint(&format!("{prefix}/l2"), w);
    }

    /// Deserialize a model written by [`QuantizedEncoder::write_checkpoint`].
    pub fn from_checkpoint(ck: &Checkpoint, prefix: &str) -> Result<Self, CheckpointError> {
        let cfg = EncoderConfig {
            vocab_size: ck.meta_usize(&format!("{prefix}.vocab_size"))?,
            embed_dim: ck.meta_usize(&format!("{prefix}.embed_dim"))?,
            hidden_dim: ck.meta_usize(&format!("{prefix}.hidden_dim"))?,
            n_classes: ck.meta_usize(&format!("{prefix}.n_classes"))?,
            max_len: ck.meta_usize(&format!("{prefix}.max_len"))?,
            lr: ck.meta_f32(&format!("{prefix}.lr"))?,
            seed: ck.meta_u64(&format!("{prefix}.seed"))?,
        };
        let (_, _, emb) = ck.tensor_f32(&format!("{prefix}/emb"))?;
        let (_, _, att_v) = ck.tensor_f32(&format!("{prefix}/att_v"))?;
        if emb.len() != cfg.vocab_size * cfg.embed_dim || att_v.len() != cfg.embed_dim {
            return Err(CheckpointError::Malformed("encoder tensor shape mismatch".to_string()));
        }
        Ok(QuantizedEncoder {
            cfg,
            emb,
            att_v,
            att_w: QuantizedLinear::from_checkpoint(ck, &format!("{prefix}/att_w"))?,
            l1: QuantizedLinear::from_checkpoint(ck, &format!("{prefix}/l1"))?,
            l2: QuantizedLinear::from_checkpoint(ck, &format!("{prefix}/l2"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_parses() {
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("int8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("i8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp16"), None);
        assert_eq!(Precision::default().as_str(), "f32");
        assert_eq!(Precision::Int8.as_str(), "int8");
    }

    #[test]
    fn row_scale_positive_and_zero_safe() {
        assert_eq!(row_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(row_scale(&[]), 1.0);
        let s = row_scale(&[-2.54, 1.0]);
        assert!((s - 0.02).abs() < 1e-6, "{s}");
    }

    #[test]
    fn quantize_saturates_and_rounds() {
        assert_eq!(quantize_value(1e9, 1.0), 127);
        assert_eq!(quantize_value(-1e9, 1.0), -127);
        assert_eq!(quantize_value(0.49, 1.0), 0);
        assert_eq!(quantize_value(0.51, 1.0), 1);
        assert_eq!(quantize_value(f32::NAN, 1.0), 0);
    }

    #[test]
    fn gemm_nt_i8_matches_integer_reference() {
        // 2×3 activations, 3→2 weights; hand-computed integer reference.
        let aq: Vec<i16> = vec![1, -2, 3, 0, 4, -5];
        let a_scales = vec![0.5f32, 0.25];
        // Row-major 2×3 weights quantized with unit scales.
        let wq: Vec<i16> = vec![1, 0, -1, 2, 2, 2];
        let w_scales = vec![1.0f32, 2.0];
        let bias = vec![10.0f32, -100.0];
        let mut out = vec![0.0f32; 4];
        gemm_nt_i8(&aq, &a_scales, &wq, &w_scales, Some(&bias), 2, 3, 2, false, &mut out);
        // Row 0: acc = [1·1 + (−2)·0 + 3·(−1), 1·2 + (−2)·2 + 3·2] = [−2, 4]
        //   out = [10 + (−2)·0.5·1, −100 + 4·0.5·2] = [9, −96]
        // Row 1: acc = [0·1 + 4·0 + (−5)(−1), 0·2 + 4·2 + (−5)·2] = [5, −2]
        //   out = [10 + 5·0.25·1, −100 + (−2)·0.25·2] = [11.25, −101]
        assert_eq!(out, vec![9.0, -96.0, 11.25, -101.0]);
        // ReLU epilogue clamps the negatives.
        gemm_nt_i8(&aq, &a_scales, &wq, &w_scales, Some(&bias), 2, 3, 2, true, &mut out);
        assert_eq!(out, vec![9.0, 0.0, 11.25, 0.0]);
    }

    #[test]
    fn quantized_linear_roundtrips_weights_within_half_scale() {
        let w: Vec<f32> = (0..12).map(|i| ((i as f32) * 0.37 - 2.0).sin()).collect();
        let b = vec![0.1f32, -0.2, 0.3];
        let lin = QuantizedLinear::from_f32(&w, &b, 3, 4);
        let back = lin.dequantized_weights();
        for (row, back_row) in w.chunks_exact(4).zip(back.chunks_exact(4)) {
            let s = row_scale(row);
            for (&orig, &deq) in row.iter().zip(back_row) {
                assert!((orig - deq).abs() <= s * 0.5 + 1e-6, "{orig} vs {deq} (scale {s})");
            }
        }
    }
}
