//! Adam optimizer (Kingma & Ba, 2015).

use crate::tensor::Tensor;

/// Adam state for one group of tensors. Call [`Adam::step`] after gradients
/// have been accumulated; it updates values and clears gradients.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Create an optimizer for tensors with the given element counts.
    pub fn new(lr: f32, sizes: &[usize]) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Convenience: build from the tensors themselves.
    pub fn for_tensors(lr: f32, tensors: &[&Tensor]) -> Self {
        let sizes: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
        Adam::new(lr, &sizes)
    }

    /// Apply one update step to `params` (order must match construction),
    /// then zero their gradients. Optionally clips the global grad norm to
    /// `clip` when `Some`.
    pub fn step(&mut self, params: &mut [&mut Tensor], clip: Option<f32>) {
        assert_eq!(params.len(), self.m.len(), "parameter group size mismatch");
        if let Some(max_norm) = clip {
            let total: f32 = params.iter().map(|p| p.grad_norm().powi(2)).sum::<f32>().sqrt();
            if total > max_norm && total > 0.0 {
                let scale = max_norm / total;
                for p in params.iter_mut() {
                    for g in &mut p.grad {
                        *g *= scale;
                    }
                }
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (omb1, omb2) = (1.0 - b1, 1.0 - b2);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            debug_assert_eq!(m.len(), p.len());
            if self.weight_decay > 0.0 {
                // Decoupled decay applied directly to the weights (its own
                // pass: the update below never reads other elements, so the
                // per-element op sequence is unchanged).
                let decay = lr * self.weight_decay;
                for d in &mut p.data {
                    *d -= decay * *d;
                }
            }
            // Zip-driven so the elementwise div/sqrt math vectorizes; the
            // per-element operation sequence is exactly the scalar Adam
            // recurrence, so results are bit-identical lane by lane.
            for (((d, &g), mi), vi) in
                p.data.iter_mut().zip(p.grad.iter()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = b1 * *mi + omb1 * g;
                *vi = b2 * *vi + omb2 * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *d -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)² should converge to x = 3.
    #[test]
    fn converges_on_quadratic() {
        let mut x = Tensor::zeros(1, 1);
        let mut opt = Adam::new(0.1, &[1]);
        for _ in 0..500 {
            let g = 2.0 * (x.data[0] - 3.0);
            x.grad[0] = g;
            opt.step(&mut [&mut x], None);
        }
        assert!((x.data[0] - 3.0).abs() < 1e-3, "x = {}", x.data[0]);
    }

    #[test]
    fn gradient_cleared_after_step() {
        let mut x = Tensor::zeros(1, 2);
        x.grad = vec![1.0, -1.0];
        let mut opt = Adam::new(0.01, &[2]);
        opt.step(&mut [&mut x], None);
        assert_eq!(x.grad, vec![0.0, 0.0]);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut a = Tensor::zeros(1, 1);
        let mut b = Tensor::zeros(1, 1);
        a.grad[0] = 300.0;
        b.grad[0] = 400.0; // joint norm 500
        let mut opt = Adam::new(1.0, &[1, 1]);
        opt.step(&mut [&mut a, &mut b], Some(5.0));
        // After clipping the grads keep their 3:4 ratio.
        // (First Adam step size ≈ lr regardless of magnitude, so check via
        // the internal moments instead: ratio of m buffers.)
        let ratio = opt.m[0][0] / opt.m[1][0];
        assert!((ratio - 0.75).abs() < 1e-5);
        assert!(opt.m[0][0].abs() <= 5.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut x = Tensor::zeros(1, 1);
        x.data[0] = 1.0;
        let mut opt = Adam::new(0.1, &[1]);
        opt.weight_decay = 0.5;
        // Zero gradient: only decay acts.
        opt.step(&mut [&mut x], None);
        assert!(x.data[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn group_size_checked() {
        let mut x = Tensor::zeros(1, 1);
        let mut opt = Adam::new(0.1, &[1, 1]);
        opt.step(&mut [&mut x], None);
    }
}
