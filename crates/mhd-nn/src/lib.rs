#![forbid(unsafe_code)]
//! # mhd-nn — minimal neural-network substrate
//!
//! A small, dependency-light neural-network library with **real
//! gradient-based training** (manual backpropagation, Adam). It powers:
//!
//! - the "bert-mini" discriminative baseline in `mhd-models`
//!   (embedding → attention pooling → MLP, trained from scratch);
//! - LoRA-style adapter fine-tuning of the simulated LLM backbone in
//!   `mhd-llm`.
//!
//! Modules:
//! - [`tensor`] — parameter tensors with gradient buffers
//! - [`linalg`] — scalar reference kernels (the bit-identity oracle)
//! - [`gemm`] — cache-blocked batched GEMM kernels + scratch [`Workspace`]
//! - [`optim`] — Adam optimizer
//! - [`mlp`] — a one-hidden-layer softmax classifier
//! - [`encoder`] — attention-pooled text encoder classifier
//! - [`lora`] — low-rank adapters over a frozen linear map
//! - [`train`] — mini-batch training loop with early stopping
//! - [`quant`] — int8 inference path (per-row symmetric scales, i32
//!   accumulation, [`QuantizedMlp`] / [`QuantizedEncoder`] wrappers)
//! - [`checkpoint`] — deterministic binary container for saving and
//!   loading the model zoo with zero-copy tensor views
//!
//! Training and batched inference run on the [`gemm`] kernels; the
//! [`linalg`] scalar kernels remain the semantic reference, and the
//! batched paths are tested to reproduce them byte-for-byte at any
//! thread count (see `tests/gemm_props.rs`). Int8 inference trades a
//! bounded quantization error (see `tests/quant_props.rs`) for speed;
//! its integer accumulation is exact, so it is deterministic at any
//! thread count by construction.

#![allow(clippy::needless_range_loop)] // index loops are the clearest idiom for the dense kernels

pub mod checkpoint;
pub mod encoder;
pub mod gemm;
pub mod linalg;
pub mod lora;
pub mod mlp;
pub mod optim;
pub mod quant;
pub mod tensor;
pub mod train;

pub use checkpoint::{Checkpoint, CheckpointError, MappedCheckpoint};
pub use encoder::Encoder;
pub use gemm::Workspace;
pub use lora::LoraAdapter;
pub use mlp::Mlp;
pub use optim::Adam;
pub use quant::{Precision, QuantizedEncoder, QuantizedMlp};
pub use tensor::Tensor;
