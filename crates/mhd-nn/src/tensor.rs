//! Parameter tensors: a value buffer plus a gradient buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// A 2-D parameter tensor (row-major) with an accompanying gradient buffer.
/// Vectors are represented as `1×n` tensors.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values.
    pub data: Vec<f32>,
    /// Row-major gradients, same shape as `data`.
    pub grad: Vec<f32>,
}

impl Tensor {
    /// Zero-initialized tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols], grad: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
        Tensor { rows, cols, data, grad: vec![0.0; rows * cols] }
    }

    /// Small-normal initialization (σ = `std`), via Box–Muller.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { rows, cols, data, grad: vec![0.0; n] }
    }

    /// Value at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable value at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Accumulate into the gradient at `(r, c)`.
    #[inline]
    pub fn grad_at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.grad[r * self.cols + c]
    }

    /// Reset all gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the tensor empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Frobenius norm of the values.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Global gradient L2 norm.
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.len(), 12);
        assert_eq!(t.at(2, 3), 0.0);
    }

    #[test]
    fn xavier_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(8, 8, &mut rng);
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(t.data.iter().all(|&v| v.abs() <= bound));
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::randn(100, 100, 0.5, &mut rng);
        let mean: f32 = t.data.iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t.data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn indexing_and_grad() {
        let mut t = Tensor::zeros(2, 3);
        *t.at_mut(1, 2) = 5.0;
        assert_eq!(t.at(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
        *t.grad_at_mut(0, 0) += 2.0;
        assert_eq!(t.grad_norm(), 2.0);
        t.zero_grad();
        assert_eq!(t.grad_norm(), 0.0);
    }

    #[test]
    fn deterministic_init() {
        let a = Tensor::xavier(4, 4, &mut StdRng::seed_from_u64(7));
        let b = Tensor::xavier(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.data, b.data);
    }
}
