#![forbid(unsafe_code)]
//! # mhd-corpus — synthetic social-media mental-health corpus
//!
//! This crate replaces the IRB/API-gated Reddit and Twitter datasets used in
//! the surveyed literature (Dreaddit, DepSeverity, SDCNL, CSSRS, SWMH,
//! T-SID, SAD) with deterministic synthetic equivalents that preserve the
//! properties detection methods actually consume:
//!
//! - class-conditional psycholinguistic structure ([`signal`]): per-disorder
//!   mixtures over affect-lexicon categories, first-person pronoun density,
//!   absolutist-word rates, and distinctive topic vocabulary;
//! - hard class overlap (depression vs suicidal ideation share most of their
//!   vocabulary, differing in the rate of death-category language);
//! - label noise, class imbalance, and length distributions pinned to the
//!   published dataset statistics;
//! - comorbidity: posts can carry secondary-condition signal.
//!
//! Modules:
//! - [`taxonomy`] — disorders, severities and task label sets
//! - [`signal`] — per-condition generative signal profiles
//! - [`generator`] — template-based post generation
//! - [`dataset`] — `Example` / `Dataset` / split containers
//! - [`longitudinal`] — user timelines for user-level / early detection
//! - [`io`] — TSV export/import of datasets
//! - [`quality`] — dedup / contamination / class-overlap checks
//! - [`builders`] — the seven benchmark dataset constructors
//! - [`registry`] — dataset cards and the T1 statistics table
//! - [`perturb`] — robustness perturbations (typos, negation, emoji, …)

pub mod builders;
pub mod dataset;
pub mod generator;
pub mod io;
pub mod longitudinal;
pub mod perturb;
pub mod quality;
pub mod registry;
pub mod signal;
pub mod taxonomy;

pub use builders::DatasetId;
pub use dataset::{Dataset, Example, Split};
pub use registry::{all_dataset_ids, build, DatasetCard};
pub use taxonomy::{Disorder, Severity, Task};
