//! Corpus quality checks.
//!
//! The data-preprocessing sections of the surveyed benchmarks all run the
//! same hygiene battery before training anything; this module implements it
//! for our datasets (and for any TSV-imported external dataset):
//!
//! - exact and near-duplicate detection (hashed-shingle Jaccard);
//! - train/test leakage: near-duplicates straddling the split boundary —
//!   the "dataset contamination" check;
//! - class vocabulary overlap: pairwise Jaccard of class vocabularies,
//!   quantifying how lexically confusable the label set is.

use crate::dataset::{Dataset, Split};
use mhd_text::hashing::fnv1a;
use mhd_text::tokenize::words;
use std::collections::{HashMap, HashSet};

/// Full quality report for one dataset.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Number of exact duplicate texts (beyond the first occurrence).
    pub exact_duplicates: usize,
    /// Pairs of near-duplicate examples (Jaccard ≥ threshold).
    pub near_duplicate_pairs: usize,
    /// Near-duplicate pairs that straddle train and test — contamination.
    pub train_test_leaks: usize,
    /// Pairwise class-vocabulary Jaccard similarities, indexed
    /// `[class_a][class_b]` (symmetric, 1.0 diagonal).
    pub class_vocab_overlap: Vec<Vec<f64>>,
}

impl QualityReport {
    /// The most lexically confusable class pair `(a, b, jaccard)`.
    pub fn most_confusable_pair(&self) -> Option<(usize, usize, f64)> {
        let k = self.class_vocab_overlap.len();
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..k {
            for b in (a + 1)..k {
                let j = self.class_vocab_overlap[a][b];
                if best.is_none_or(|(_, _, bj)| j > bj) {
                    best = Some((a, b, j));
                }
            }
        }
        best
    }
}

/// Shingle size (in tokens) for near-duplicate hashing.
const SHINGLE: usize = 5;

/// Compute hashed shingle set for a text.
fn shingles(text: &str) -> HashSet<u64> {
    let toks = words(text);
    if toks.len() < SHINGLE {
        let joined = toks.join(" ");
        return std::iter::once(fnv1a(joined.as_bytes())).collect();
    }
    toks.windows(SHINGLE)
        .map(|w| fnv1a(w.join(" ").as_bytes()))
        .collect()
}

fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

/// Run the quality battery. `near_dup_threshold` is the shingle-Jaccard
/// level above which two posts count as near-duplicates (0.5 is the common
/// default in the dedup literature).
pub fn check_quality(dataset: &Dataset, near_dup_threshold: f64) -> QualityReport {
    // Exact duplicates.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut exact_duplicates = 0;
    for e in &dataset.examples {
        let h = fnv1a(e.text.as_bytes());
        let count = seen.entry(h).or_insert(0);
        if *count > 0 {
            exact_duplicates += 1;
        }
        *count += 1;
    }
    // Near-duplicates: compare pairs that share at least one shingle bucket
    // (inverted index keeps this far below O(n²) on realistic data).
    let shingle_sets: Vec<HashSet<u64>> =
        dataset.examples.iter().map(|e| shingles(&e.text)).collect();
    let mut bucket_index: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, set) in shingle_sets.iter().enumerate() {
        for &s in set {
            bucket_index.entry(s).or_default().push(i);
        }
    }
    let mut candidate_pairs: HashSet<(usize, usize)> = HashSet::new();
    for bucket in bucket_index.values() {
        if bucket.len() < 2 || bucket.len() > 50 {
            continue; // Hot shingles (common phrases) are not dedup evidence.
        }
        for (ai, &a) in bucket.iter().enumerate() {
            for &b in &bucket[ai + 1..] {
                candidate_pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    let mut near_duplicate_pairs = 0;
    let mut train_test_leaks = 0;
    for &(a, b) in &candidate_pairs {
        if jaccard(&shingle_sets[a], &shingle_sets[b]) >= near_dup_threshold {
            near_duplicate_pairs += 1;
            let (sa, sb) = (dataset.examples[a].split, dataset.examples[b].split);
            if (sa == Split::Train && sb == Split::Test)
                || (sa == Split::Test && sb == Split::Train)
            {
                train_test_leaks += 1;
            }
        }
    }
    // Class vocabulary overlap.
    let k = dataset.task.n_classes();
    let mut vocabs: Vec<HashSet<String>> = vec![HashSet::new(); k];
    for e in &dataset.examples {
        for w in words(&e.text) {
            vocabs[e.label].insert(w);
        }
    }
    let mut class_vocab_overlap = vec![vec![0.0; k]; k];
    for a in 0..k {
        for b in 0..k {
            if a == b {
                class_vocab_overlap[a][b] = 1.0;
            } else {
                let inter = vocabs[a].intersection(&vocabs[b]).count();
                let union = vocabs[a].len() + vocabs[b].len() - inter;
                class_vocab_overlap[a][b] = inter as f64 / union.max(1) as f64;
            }
        }
    }
    QualityReport { exact_duplicates, near_duplicate_pairs, train_test_leaks, class_vocab_overlap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_dataset, BuildConfig, DatasetId};
    use crate::dataset::Example;
    use crate::taxonomy::Task;

    fn tiny_dataset(texts: &[(&str, usize, Split)]) -> Dataset {
        Dataset {
            name: "q",
            task: Task { name: "q", description: "q", labels: vec!["a", "b"] },
            examples: texts
                .iter()
                .enumerate()
                .map(|(i, &(t, label, split))| Example {
                    id: i as u64,
                    text: t.to_string(),
                    label,
                    true_label: label,
                    split,
                })
                .collect(),
        }
    }

    #[test]
    fn exact_duplicates_counted() {
        let d = tiny_dataset(&[
            ("the same post text here", 0, Split::Train),
            ("the same post text here", 0, Split::Train),
            ("something different entirely", 1, Split::Train),
        ]);
        let r = check_quality(&d, 0.5);
        assert_eq!(r.exact_duplicates, 1);
    }

    #[test]
    fn near_duplicates_and_leaks_detected() {
        let base = "i feel hopeless and empty tonight and nothing seems to matter anymore at all";
        let variant = "i feel hopeless and empty tonight and nothing seems to matter anymore at night";
        let d = tiny_dataset(&[
            (base, 0, Split::Train),
            (variant, 0, Split::Test),
            ("completely unrelated cheerful content about gardens and cooking this weekend", 1, Split::Test),
        ]);
        let r = check_quality(&d, 0.5);
        assert!(r.near_duplicate_pairs >= 1, "{r:?}");
        assert!(r.train_test_leaks >= 1, "{r:?}");
    }

    #[test]
    fn benchmark_datasets_have_no_exact_duplicate_explosion() {
        let d = build_dataset(
            DatasetId::SdcnlS,
            &BuildConfig { seed: 2, scale: 0.3, label_noise: None },
        );
        let r = check_quality(&d, 0.6);
        // Template generation can repeat, but wholesale duplication would be
        // a generator bug.
        assert!(
            r.exact_duplicates < d.examples.len() / 10,
            "too many duplicates: {} of {}",
            r.exact_duplicates,
            d.examples.len()
        );
    }

    #[test]
    fn confusable_pair_is_symmetric_diag_one() {
        let d = build_dataset(
            DatasetId::SwmhS,
            &BuildConfig { seed: 2, scale: 0.1, label_noise: None },
        );
        let r = check_quality(&d, 0.5);
        let k = r.class_vocab_overlap.len();
        assert_eq!(k, 5);
        for a in 0..k {
            assert!((r.class_vocab_overlap[a][a] - 1.0).abs() < 1e-12);
            for b in 0..k {
                assert!(
                    (r.class_vocab_overlap[a][b] - r.class_vocab_overlap[b][a]).abs() < 1e-12
                );
            }
        }
        let (a, b, j) = r.most_confusable_pair().expect("pairs exist");
        assert!(a < b);
        assert!(j > 0.0 && j < 1.0);
    }

    #[test]
    fn depression_suicidewatch_most_confusable_on_swmh() {
        // The signal-model design goal: the hard pair shares the most
        // vocabulary among *clinical* classes.
        let d = build_dataset(
            DatasetId::SwmhS,
            &BuildConfig { seed: 42, scale: 0.4, label_noise: Some(0.0) },
        );
        let r = check_quality(&d, 0.5);
        // depression = 0, suicidewatch = 3.
        let dep_sw = r.class_vocab_overlap[0][3];
        let dep_bipolar = r.class_vocab_overlap[0][2];
        assert!(
            dep_sw > dep_bipolar,
            "depression should overlap suicidewatch ({dep_sw:.3}) more than bipolar ({dep_bipolar:.3})"
        );
    }

    #[test]
    fn short_texts_handled() {
        let d = tiny_dataset(&[("hi", 0, Split::Train), ("yo", 1, Split::Test)]);
        let r = check_quality(&d, 0.5);
        assert_eq!(r.exact_duplicates, 0);
    }
}
