//! Robustness perturbations (Table T5 workload).
//!
//! Each perturbation is a deterministic, seeded transformation of post text
//! modelling a distribution shift the survey literature tests: typos,
//! character elongation, emoji/emoticon injection, negation-scope noise, and
//! synonym-ish lexical swaps via stopword deletion.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Available perturbation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perturbation {
    /// Keyboard-adjacent character substitutions in ~`rate` of words.
    Typos,
    /// Vowel elongation ("so" → "soooo") in ~`rate` of words.
    Elongation,
    /// Insert emoticons between sentences.
    Emoticons,
    /// Delete function words ("not", "no", …) — attacks negation handling.
    NegationDrop,
    /// Shuffle sentence order (tests bag-of-words vs structure reliance).
    SentenceShuffle,
}

impl Perturbation {
    /// All perturbations in report order.
    pub const ALL: [Perturbation; 5] = [
        Perturbation::Typos,
        Perturbation::Elongation,
        Perturbation::Emoticons,
        Perturbation::NegationDrop,
        Perturbation::SentenceShuffle,
    ];

    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::Typos => "typos",
            Perturbation::Elongation => "elongation",
            Perturbation::Emoticons => "emoticons",
            Perturbation::NegationDrop => "negation_drop",
            Perturbation::SentenceShuffle => "sentence_shuffle",
        }
    }

    /// Apply the perturbation to `text` at intensity `rate` (0..=1) with the
    /// given seed.
    pub fn apply(self, text: &str, rate: f64, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Perturbation::Typos => perturb_words(text, rate, &mut rng, typo_word),
            Perturbation::Elongation => perturb_words(text, rate, &mut rng, elongate_word),
            Perturbation::Emoticons => inject_emoticons(text, rate, &mut rng),
            Perturbation::NegationDrop => drop_negations(text, rate, &mut rng),
            Perturbation::SentenceShuffle => shuffle_sentences(text, &mut rng),
        }
    }
}

fn perturb_words(
    text: &str,
    rate: f64,
    rng: &mut StdRng,
    f: fn(&str, &mut StdRng) -> String,
) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    let mut first = true;
    for w in text.split_whitespace() {
        if !first {
            out.push(' ');
        }
        first = false;
        if w.chars().all(|c| c.is_alphabetic()) && w.len() >= 3 && rng.gen_bool(rate) {
            out.push_str(&f(w, rng));
        } else {
            out.push_str(w);
        }
    }
    out
}

/// Keyboard-adjacency map for a QWERTY layout (lowercase letters only).
fn adjacent_key(c: char) -> char {
    match c {
        'q' => 'w', 'w' => 'e', 'e' => 'r', 'r' => 't', 't' => 'y', 'y' => 'u',
        'u' => 'i', 'i' => 'o', 'o' => 'p', 'p' => 'o', 'a' => 's', 's' => 'd',
        'd' => 'f', 'f' => 'g', 'g' => 'h', 'h' => 'j', 'j' => 'k', 'k' => 'l',
        'l' => 'k', 'z' => 'x', 'x' => 'c', 'c' => 'v', 'v' => 'b', 'b' => 'n',
        'n' => 'm', 'm' => 'n',
        other => other,
    }
}

fn typo_word(w: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = w.chars().collect();
    let pos = rng.gen_range(0..chars.len());
    let mut out: String = String::with_capacity(w.len());
    for (i, &c) in chars.iter().enumerate() {
        if i == pos {
            out.push(adjacent_key(c.to_ascii_lowercase()));
        } else {
            out.push(c);
        }
    }
    out
}

fn elongate_word(w: &str, rng: &mut StdRng) -> String {
    // Stretch the last vowel if any, else the last character.
    let chars: Vec<char> = w.chars().collect();
    let pos = chars
        .iter()
        .rposition(|c| matches!(c.to_ascii_lowercase(), 'a' | 'e' | 'i' | 'o' | 'u'))
        .unwrap_or(chars.len() - 1);
    let reps = rng.gen_range(2..=4);
    let mut out = String::with_capacity(w.len() + reps);
    for (i, &c) in chars.iter().enumerate() {
        out.push(c);
        if i == pos {
            for _ in 0..reps {
                out.push(c);
            }
        }
    }
    out
}

const INJECT_EMOTICONS: &[&str] = &[":(", ":)", ":/", ";_;", "xD", "<3"];

fn inject_emoticons(text: &str, rate: f64, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(text.len() + 16);
    for (i, part) in text.split_inclusive(['.', '!', '?']).enumerate() {
        if i > 0 && rng.gen_bool(rate) {
            out.push(' ');
            // mhd-lint: allow(R6) — INJECT_EMOTICONS is a non-empty const array
            out.push_str(INJECT_EMOTICONS.choose(rng).expect("non-empty"));
        }
        out.push_str(part);
    }
    out
}

const NEGATIONS: &[&str] = &["not", "no", "never", "can't", "won't", "don't", "cannot", "didn't"];

fn drop_negations(text: &str, rate: f64, rng: &mut StdRng) -> String {
    let kept: Vec<&str> = text
        .split_whitespace()
        .filter(|w| {
            let lw = w.to_lowercase();
            let is_neg = NEGATIONS.contains(&lw.trim_matches(|c: char| !c.is_alphanumeric() && c != '\''));
            !(is_neg && rng.gen_bool(rate))
        })
        .collect();
    kept.join(" ")
}

fn shuffle_sentences(text: &str, rng: &mut StdRng) -> String {
    let mut sents: Vec<&str> = mhd_text::tokenize::sentences(text);
    sents.shuffle(rng);
    sents.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "i can't sleep at night. everything feels hopeless. why do i never get better?";

    #[test]
    fn deterministic() {
        for p in Perturbation::ALL {
            assert_eq!(p.apply(SAMPLE, 0.5, 9), p.apply(SAMPLE, 0.5, 9), "{:?}", p);
        }
    }

    #[test]
    fn zero_rate_typos_identity() {
        assert_eq!(Perturbation::Typos.apply(SAMPLE, 0.0, 1), SAMPLE);
    }

    #[test]
    fn typos_change_words_not_length_much() {
        let out = Perturbation::Typos.apply(SAMPLE, 1.0, 2);
        assert_ne!(out, SAMPLE);
        assert_eq!(out.split_whitespace().count(), SAMPLE.split_whitespace().count());
    }

    #[test]
    fn elongation_lengthens() {
        let out = Perturbation::Elongation.apply(SAMPLE, 1.0, 3);
        assert!(out.len() > SAMPLE.len());
    }

    #[test]
    fn emoticons_injected() {
        let out = Perturbation::Emoticons.apply(SAMPLE, 1.0, 4);
        assert!(INJECT_EMOTICONS.iter().any(|e| out.contains(e)), "{out}");
    }

    #[test]
    fn negation_dropped() {
        let out = Perturbation::NegationDrop.apply(SAMPLE, 1.0, 5);
        let lower = out.to_lowercase();
        assert!(!lower.split_whitespace().any(|w| w == "never" || w == "can't"), "{out}");
        // Content words survive.
        assert!(lower.contains("hopeless"));
    }

    #[test]
    fn shuffle_preserves_sentences() {
        let out = Perturbation::SentenceShuffle.apply(SAMPLE, 1.0, 6);
        assert!(out.contains("everything feels hopeless."));
        assert_eq!(
            mhd_text::tokenize::sentences(&out).len(),
            mhd_text::tokenize::sentences(SAMPLE).len()
        );
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Perturbation::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Perturbation::ALL.len());
    }

    #[test]
    fn empty_text_safe() {
        for p in Perturbation::ALL {
            let out = p.apply("", 1.0, 7);
            assert!(out.is_empty() || out.trim().is_empty(), "{:?} -> {out:?}", p);
        }
    }
}
