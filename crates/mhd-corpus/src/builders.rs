//! Benchmark dataset builders.
//!
//! Seven datasets mirror the canonical benchmark suite of the surveyed
//! literature. Each carries a `-s` suffix ("synthetic") and pins the class
//! structure, approximate size ratio, label-noise rate and text-length
//! regime of its real counterpart:
//!
//! | id | real counterpart | task |
//! |----|------------------|------|
//! | `dreaddit-s` | Dreaddit (Turcan & McKeown 2019) | binary stress |
//! | `depsign-s`  | DepSeverity / LT-EDI DepSign     | 4-way depression severity |
//! | `sdcnl-s`    | SDCNL (Haque et al. 2021)        | suicide vs depression |
//! | `cssrs-s`    | CSSRS-Suicide (Gaur et al. 2019) | 5-way suicide risk |
//! | `swmh-s`     | SWMH (Ji et al. 2021)            | 5-way subreddit triage |
//! | `tsid-s`     | T-SID (Ji et al. 2021)           | 4-way Twitter triage |
//! | `sad-s`      | SAD (Mauriello et al. 2021)      | 6-way stressor cause |
//!
//! `sad-s` uses six causes rather than SAD's nine because three of the
//! original causes have no distinct lexical category in our generator; see
//! DESIGN.md §2.

use crate::dataset::{Dataset, Example, Split};
use crate::generator::{Generator, PostSpec, Style};
use crate::signal::SignalProfile;
use crate::taxonomy::{Disorder, Severity, Task};
use mhd_text::lexicon::LexiconCategory as C;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Identifier of a benchmark dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// Binary stress detection (Dreaddit-style).
    DreadditS,
    /// Four-way depression severity (DepSign-style).
    DepSignS,
    /// Suicide vs depression (SDCNL-style).
    SdcnlS,
    /// Five-way suicide-risk grading (CSSRS-style).
    CssrsS,
    /// Five-way subreddit triage (SWMH-style).
    SwmhS,
    /// Four-way Twitter triage (T-SID-style).
    TsidS,
    /// Six-way stressor-cause categorization (SAD-style).
    SadS,
}

impl DatasetId {
    /// All dataset ids in benchmark order.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::DreadditS,
        DatasetId::DepSignS,
        DatasetId::SdcnlS,
        DatasetId::CssrsS,
        DatasetId::SwmhS,
        DatasetId::TsidS,
        DatasetId::SadS,
    ];

    /// Machine name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::DreadditS => "dreaddit-s",
            DatasetId::DepSignS => "depsign-s",
            DatasetId::SdcnlS => "sdcnl-s",
            DatasetId::CssrsS => "cssrs-s",
            DatasetId::SwmhS => "swmh-s",
            DatasetId::TsidS => "tsid-s",
            DatasetId::SadS => "sad-s",
        }
    }

    /// Parse from the machine name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }
}

/// How one class's posts are generated.
enum GenKind {
    /// Standard disorder-driven generation, with an optional comorbidity
    /// pool sampled at 20%.
    Spec(PostSpec, &'static [Disorder]),
    /// Custom signal profile (stressor causes, risk grades).
    Profile(Box<SignalProfile>, Severity, Style),
}

struct ClassSpec {
    label: &'static str,
    count: usize,
    gen: GenKind,
}

/// Build configuration: the RNG seed and a global size multiplier.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Seed for all generation randomness (labels, text, splits, noise).
    pub seed: u64,
    /// Multiplies every class count (1.0 = benchmark default sizes).
    pub scale: f64,
    /// Annotation-noise override; `None` keeps each dataset's default.
    pub label_noise: Option<f64>,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { seed: 42, scale: 1.0, label_noise: None }
    }
}

/// Build a benchmark dataset.
pub fn build_dataset(id: DatasetId, config: &BuildConfig) -> Dataset {
    let (task, classes, default_noise) = spec_for(id);
    let noise = config.label_noise.unwrap_or(default_noise);
    let mut rng = StdRng::seed_from_u64(config.seed ^ fnv_name(id.name()));
    let generator = Generator::new();
    let mut examples = Vec::new();
    let mut next_id: u64 = 0;

    for (class_idx, class) in classes.iter().enumerate() {
        assert_eq!(
            class.label, task.labels[class_idx],
            "class spec order must match task label order"
        );
        let n = ((class.count as f64 * config.scale).round() as usize).max(4);
        // Per-class split assignment: stratified 70/10/20.
        let mut splits = Vec::with_capacity(n);
        for i in 0..n {
            let r = i as f64 / n as f64;
            splits.push(if r < 0.7 {
                Split::Train
            } else if r < 0.8 {
                Split::Val
            } else {
                Split::Test
            });
        }
        splits.shuffle(&mut rng);
        for split in splits {
            let text = match &class.gen {
                GenKind::Spec(spec, comorbid_pool) => {
                    let mut spec = *spec;
                    if !comorbid_pool.is_empty() && rng.gen_bool(0.2) {
                        spec.secondary = comorbid_pool.choose(&mut rng).copied();
                    }
                    // Vary severity around the spec's default for diversity.
                    if spec.disorder != Disorder::Control && spec.severity == Severity::Moderate {
                        let roll: f64 = rng.gen();
                        spec.severity = if roll < 0.25 {
                            Severity::Mild
                        } else if roll < 0.8 {
                            Severity::Moderate
                        } else {
                            Severity::Severe
                        };
                    }
                    generator.generate(&spec, &mut rng)
                }
                GenKind::Profile(prof, sev, style) => {
                    generator.generate_from_profile(prof, *sev, *style, &mut rng)
                }
            };
            // Annotation noise: flip to a uniformly random *other* class.
            let label = if task.n_classes() > 1 && rng.gen_bool(noise) {
                let offset = rng.gen_range(1..task.n_classes());
                (class_idx + offset) % task.n_classes()
            } else {
                class_idx
            };
            examples.push(Example { id: next_id, text, label, true_label: class_idx, split });
            next_id += 1;
        }
    }
    // Shuffle example order (ids stay stable identifiers of content).
    examples.shuffle(&mut rng);
    Dataset { name: id.name(), task, examples }
}

fn fnv_name(name: &str) -> u64 {
    mhd_text::hashing::fnv1a(name.as_bytes())
}

fn spec(d: Disorder) -> PostSpec {
    PostSpec::simple(d)
}

fn tweet(d: Disorder) -> PostSpec {
    PostSpec { style: Style::Tweet, ..PostSpec::simple(d) }
}

fn custom_profile(d: Disorder, weights: Vec<(C, f64)>, filler: f64, fp: f64) -> Box<SignalProfile> {
    Box::new(SignalProfile {
        disorder: d,
        category_weights: weights,
        filler_floor: filler,
        first_person_boost: fp,
    })
}

fn spec_for(id: DatasetId) -> (Task, Vec<ClassSpec>, f64) {
    match id {
        DatasetId::DreadditS => (
            Task {
                name: "stress_binary",
                description: "whether the poster is experiencing psychological stress",
                labels: vec!["not stressed", "stressed"],
            },
            vec![
                ClassSpec { label: "not stressed", count: 640, gen: GenKind::Spec(spec(Disorder::Control), &[]) },
                ClassSpec {
                    label: "stressed",
                    count: 780,
                    gen: GenKind::Spec(spec(Disorder::Stress), &[Disorder::Anxiety]),
                },
            ],
            0.08,
        ),
        DatasetId::DepSignS => (
            Task {
                name: "depression_severity",
                description: "the severity of depressive symptoms shown by the poster",
                labels: vec!["minimum", "mild", "moderate", "severe"],
            },
            Severity::ALL
                .iter()
                .zip([600usize, 300, 260, 140])
                .map(|(&sev, count)| ClassSpec {
                    label: sev.label(),
                    count,
                    gen: GenKind::Spec(
                        PostSpec {
                            disorder: if sev == Severity::None { Disorder::Control } else { Disorder::Depression },
                            severity: sev,
                            secondary: None,
                            style: Style::RedditPost,
                        },
                        &[],
                    ),
                })
                .collect(),
            0.10,
        ),
        DatasetId::SdcnlS => (
            Task {
                name: "suicide_vs_depression",
                description: "whether the post expresses suicidal ideation or (non-suicidal) depression",
                labels: vec!["depression", "suicide"],
            },
            vec![
                ClassSpec { label: "depression", count: 400, gen: GenKind::Spec(spec(Disorder::Depression), &[]) },
                ClassSpec {
                    label: "suicide",
                    count: 390,
                    gen: GenKind::Spec(spec(Disorder::SuicidalIdeation), &[]),
                },
            ],
            0.07,
        ),
        DatasetId::CssrsS => (
            Task {
                name: "suicide_risk",
                description: "the Columbia-scale suicide risk level of the poster",
                labels: vec!["supportive", "indicator", "ideation", "behavior", "attempt"],
            },
            vec![
                ClassSpec {
                    label: "supportive",
                    count: 110,
                    gen: GenKind::Profile(
                        custom_profile(
                            Disorder::Control,
                            vec![(C::Treatment, 1.0), (C::Social, 0.8), (C::PositiveEmotion, 0.6)],
                            0.5,
                            0.2,
                        ),
                        Severity::Moderate,
                        Style::RedditPost,
                    ),
                },
                ClassSpec {
                    label: "indicator",
                    count: 120,
                    gen: GenKind::Spec(
                        PostSpec { disorder: Disorder::Depression, severity: Severity::Mild, secondary: None, style: Style::RedditPost },
                        &[],
                    ),
                },
                ClassSpec {
                    label: "ideation",
                    count: 140,
                    gen: GenKind::Spec(
                        PostSpec { disorder: Disorder::SuicidalIdeation, severity: Severity::Moderate, secondary: None, style: Style::RedditPost },
                        &[],
                    ),
                },
                ClassSpec {
                    label: "behavior",
                    count: 80,
                    gen: GenKind::Spec(
                        PostSpec { disorder: Disorder::SuicidalIdeation, severity: Severity::Severe, secondary: None, style: Style::RedditPost },
                        &[],
                    ),
                },
                ClassSpec {
                    label: "attempt",
                    count: 50,
                    gen: GenKind::Profile(
                        custom_profile(
                            Disorder::SuicidalIdeation,
                            vec![(C::Death, 1.4), (C::Sadness, 0.4), (C::Treatment, 0.35), (C::Body, 0.3)],
                            0.25,
                            0.7,
                        ),
                        Severity::Severe,
                        Style::RedditPost,
                    ),
                },
            ],
            0.10,
        ),
        DatasetId::SwmhS => (
            Task {
                name: "disorder_triage",
                description: "which mental-health community the post belongs to",
                labels: vec!["depression", "anxiety", "bipolar", "suicidewatch", "offmychest"],
            },
            vec![
                ClassSpec {
                    label: "depression",
                    count: 450,
                    gen: GenKind::Spec(spec(Disorder::Depression), &[Disorder::Anxiety]),
                },
                ClassSpec {
                    label: "anxiety",
                    count: 400,
                    gen: GenKind::Spec(spec(Disorder::Anxiety), &[Disorder::Depression]),
                },
                ClassSpec { label: "bipolar", count: 260, gen: GenKind::Spec(spec(Disorder::Bipolar), &[]) },
                ClassSpec {
                    label: "suicidewatch",
                    count: 340,
                    gen: GenKind::Spec(spec(Disorder::SuicidalIdeation), &[Disorder::Depression]),
                },
                ClassSpec { label: "offmychest", count: 300, gen: GenKind::Spec(spec(Disorder::Control), &[]) },
            ],
            0.05,
        ),
        DatasetId::TsidS => (
            Task {
                name: "twitter_triage",
                description: "which condition, if any, the tweet author shows signs of",
                labels: vec!["control", "depression", "suicide", "ptsd"],
            },
            vec![
                ClassSpec { label: "control", count: 520, gen: GenKind::Spec(tweet(Disorder::Control), &[]) },
                ClassSpec { label: "depression", count: 420, gen: GenKind::Spec(tweet(Disorder::Depression), &[]) },
                ClassSpec {
                    label: "suicide",
                    count: 380,
                    gen: GenKind::Spec(tweet(Disorder::SuicidalIdeation), &[]),
                },
                ClassSpec { label: "ptsd", count: 280, gen: GenKind::Spec(tweet(Disorder::Ptsd), &[]) },
            ],
            0.05,
        ),
        DatasetId::SadS => (
            Task {
                name: "stress_cause",
                description: "the main cause of the stress the poster describes",
                labels: vec!["work", "financial", "social", "health", "emotional", "sleep"],
            },
            {
                let causes: [(&str, C, usize); 6] = [
                    ("work", C::Work, 200),
                    ("financial", C::Money, 150),
                    ("social", C::Social, 160),
                    ("health", C::Body, 140),
                    ("emotional", C::NegativeEmotion, 150),
                    ("sleep", C::Sleep, 110),
                ];
                causes
                    .into_iter()
                    .map(|(label, cat, count)| ClassSpec {
                        label,
                        count,
                        gen: GenKind::Profile(
                            custom_profile(
                                Disorder::Stress,
                                vec![(cat, 1.0), (C::Anxiety, 0.25), (C::Cognition, 0.2)],
                                0.35,
                                0.2,
                            ),
                            Severity::Moderate,
                            Style::RedditPost,
                        ),
                    })
                    .collect()
            },
            0.06,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BuildConfig {
        BuildConfig { seed: 7, scale: 0.1, label_noise: None }
    }

    #[test]
    fn names_roundtrip() {
        for id in DatasetId::ALL {
            assert_eq!(DatasetId::from_name(id.name()), Some(id));
        }
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn all_datasets_build() {
        for id in DatasetId::ALL {
            let d = build_dataset(id, &small());
            assert!(!d.examples.is_empty(), "{} empty", d.name);
            assert_eq!(d.name, id.name());
            assert!(d.task.n_classes() >= 2);
            // Every class represented.
            let counts = d.class_counts();
            assert!(counts.iter().all(|&c| c > 0), "{}: class missing {counts:?}", d.name);
            // All splits populated.
            for s in Split::ALL {
                assert!(d.split_len(s) > 0, "{}: split {} empty", d.name, s.name());
            }
        }
    }

    #[test]
    fn deterministic_builds() {
        let a = build_dataset(DatasetId::SdcnlS, &small());
        let b = build_dataset(DatasetId::SdcnlS, &small());
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.text, y.text);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn seed_changes_content() {
        let a = build_dataset(DatasetId::SdcnlS, &BuildConfig { seed: 1, scale: 0.1, label_noise: None });
        let b = build_dataset(DatasetId::SdcnlS, &BuildConfig { seed: 2, scale: 0.1, label_noise: None });
        assert_ne!(a.examples[0].text, b.examples[0].text);
    }

    #[test]
    fn label_noise_realized_near_target() {
        let cfg = BuildConfig { seed: 3, scale: 1.0, label_noise: Some(0.2) };
        let d = build_dataset(DatasetId::DreadditS, &cfg);
        let rate = d.label_noise_rate();
        assert!((rate - 0.2).abs() < 0.05, "noise rate {rate}");
    }

    #[test]
    fn zero_noise_possible() {
        let cfg = BuildConfig { seed: 3, scale: 0.2, label_noise: Some(0.0) };
        let d = build_dataset(DatasetId::SwmhS, &cfg);
        assert_eq!(d.label_noise_rate(), 0.0);
    }

    #[test]
    fn dreaddit_is_binary_imbalanced_towards_stress() {
        let d = build_dataset(DatasetId::DreadditS, &BuildConfig::default());
        assert_eq!(d.task.n_classes(), 2);
        let counts = d.class_counts();
        assert!(counts[1] > counts[0], "stressed should be majority: {counts:?}");
    }

    #[test]
    fn depsign_severity_is_imbalanced_towards_minimum() {
        let d = build_dataset(DatasetId::DepSignS, &BuildConfig::default());
        let counts = d.class_counts();
        assert!(counts[0] > counts[3], "minimum should dominate severe: {counts:?}");
    }

    #[test]
    fn tsid_posts_are_short() {
        let tsid = build_dataset(DatasetId::TsidS, &small());
        let swmh = build_dataset(DatasetId::SwmhS, &small());
        assert!(tsid.avg_tokens() < swmh.avg_tokens() / 2.0);
    }

    #[test]
    fn scale_controls_size() {
        let s1 = build_dataset(DatasetId::SdcnlS, &BuildConfig { seed: 1, scale: 0.1, label_noise: None });
        let s2 = build_dataset(DatasetId::SdcnlS, &BuildConfig { seed: 1, scale: 0.2, label_noise: None });
        assert!(s2.examples.len() > s1.examples.len());
    }
}
