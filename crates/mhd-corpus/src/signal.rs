//! Per-condition psycholinguistic signal profiles.
//!
//! A [`SignalProfile`] describes, for one [`Disorder`], how strongly each
//! lexicon category is expressed in posts written under that condition.
//! The weights below encode the replicated findings of the mental-health
//! NLP literature:
//!
//! - depression: sadness + absolutist words + first-person density + sleep;
//! - suicidal ideation: depression's profile **plus** death-category
//!   language and burden phrases (which is exactly why SDCNL is hard);
//! - anxiety: worry/fear + somatic arousal + cognition (rumination);
//! - stress: work/money stressors + arousal, *without* the depressive core;
//! - PTSD: trauma vocabulary + sleep (nightmares) + hypervigilance;
//! - bipolar: alternating manic-energy and depressive language;
//! - eating disorder: food/body preoccupation + control language.

use crate::taxonomy::Disorder;
use mhd_text::lexicon::LexiconCategory as C;

/// A weighted mixture over lexicon categories for one condition.
#[derive(Debug, Clone)]
pub struct SignalProfile {
    /// The condition this profile generates.
    pub disorder: Disorder,
    /// `(category, weight)` — relative propensity to emit a sentence drawing
    /// on that category. Weights need not sum to 1.
    pub category_weights: Vec<(C, f64)>,
    /// Baseline fraction of *filler* (neutral everyday) sentences at
    /// moderate severity. Lower = more saturated signal.
    pub filler_floor: f64,
    /// Extra first-person-singular pressure (0 = population baseline).
    pub first_person_boost: f64,
}

/// The signal profile for a condition.
pub fn profile(d: Disorder) -> SignalProfile {
    let (category_weights, filler_floor, first_person_boost) = match d {
        Disorder::Control => (vec![(C::PositiveEmotion, 1.0), (C::Social, 0.8), (C::Work, 0.6), (C::Cognition, 0.3)], 0.85, 0.0),
        Disorder::Depression => (
            vec![
                (C::Sadness, 1.0),
                (C::Absolutist, 0.55),
                (C::Sleep, 0.5),
                (C::NegativeEmotion, 0.6),
                (C::Social, 0.4),
                (C::Cognition, 0.45),
                (C::Treatment, 0.2),
            ],
            0.35,
            0.6,
        ),
        Disorder::Anxiety => (
            vec![
                (C::Anxiety, 1.0),
                (C::Body, 0.6),
                (C::Cognition, 0.6),
                (C::Absolutist, 0.3),
                (C::Sleep, 0.3),
                (C::NegativeEmotion, 0.35),
                (C::Treatment, 0.15),
            ],
            0.4,
            0.35,
        ),
        Disorder::Stress => (
            vec![
                (C::Work, 1.0),
                (C::Money, 0.55),
                (C::Anxiety, 0.5),
                (C::Body, 0.35),
                (C::Sleep, 0.35),
                (C::Anger, 0.3),
                (C::NegativeEmotion, 0.3),
            ],
            0.45,
            0.2,
        ),
        Disorder::Ptsd => (
            vec![
                (C::Trauma, 1.0),
                (C::Sleep, 0.55),
                (C::Anxiety, 0.5),
                (C::NegativeEmotion, 0.35),
                (C::Cognition, 0.3),
                (C::Social, 0.25),
                (C::Treatment, 0.2),
            ],
            0.4,
            0.3,
        ),
        Disorder::Bipolar => (
            vec![
                (C::Mania, 1.0),
                (C::Sadness, 0.5),
                (C::Money, 0.3),
                (C::Sleep, 0.45),
                (C::Cognition, 0.3),
                (C::Treatment, 0.3),
            ],
            0.4,
            0.3,
        ),
        Disorder::SuicidalIdeation => (
            vec![
                (C::Death, 1.0),
                (C::Sadness, 0.85),
                (C::Absolutist, 0.6),
                (C::NegativeEmotion, 0.5),
                (C::Social, 0.4),
                (C::Sleep, 0.3),
                (C::Cognition, 0.35),
            ],
            0.3,
            0.7,
        ),
        Disorder::EatingDisorder => (
            vec![
                (C::Eating, 1.0),
                (C::Body, 0.6),
                (C::NegativeEmotion, 0.4),
                (C::Absolutist, 0.35),
                (C::Social, 0.25),
                (C::Cognition, 0.25),
            ],
            0.4,
            0.4,
        ),
    };
    SignalProfile { disorder: d, category_weights, filler_floor, first_person_boost }
}

impl SignalProfile {
    /// Total category weight (normalization constant for sampling).
    pub fn total_weight(&self) -> f64 {
        self.category_weights.iter().map(|&(_, w)| w).sum()
    }

    /// The single most characteristic category.
    pub fn dominant_category(&self) -> C {
        self.category_weights
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
            .map(|&(c, _)| c)
            .expect("non-empty profile")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_disorder_has_profile() {
        for &d in &Disorder::ALL {
            let p = profile(d);
            assert!(!p.category_weights.is_empty());
            assert!(p.total_weight() > 0.0);
            assert!(p.filler_floor > 0.0 && p.filler_floor < 1.0);
        }
    }

    #[test]
    fn dominant_categories_are_distinctive() {
        assert_eq!(profile(Disorder::Depression).dominant_category(), C::Sadness);
        assert_eq!(profile(Disorder::SuicidalIdeation).dominant_category(), C::Death);
        assert_eq!(profile(Disorder::Anxiety).dominant_category(), C::Anxiety);
        assert_eq!(profile(Disorder::Ptsd).dominant_category(), C::Trauma);
        assert_eq!(profile(Disorder::Stress).dominant_category(), C::Work);
        assert_eq!(profile(Disorder::Bipolar).dominant_category(), C::Mania);
        assert_eq!(profile(Disorder::EatingDisorder).dominant_category(), C::Eating);
    }

    #[test]
    fn suicidal_overlaps_depression() {
        // The hard-pair property: suicidal ideation carries substantial
        // sadness weight, so the two classes overlap lexically.
        let si = profile(Disorder::SuicidalIdeation);
        let sadness = si
            .category_weights
            .iter()
            .find(|&&(c, _)| c == C::Sadness)
            .map(|&(_, w)| w)
            .unwrap_or(0.0);
        assert!(sadness >= 0.8);
    }

    #[test]
    fn control_prefers_positive() {
        let c = profile(Disorder::Control);
        assert_eq!(c.dominant_category(), C::PositiveEmotion);
        assert!(c.filler_floor > 0.7);
        assert_eq!(c.first_person_boost, 0.0);
    }

    #[test]
    fn depressive_conditions_boost_first_person() {
        assert!(profile(Disorder::Depression).first_person_boost > 0.0);
        assert!(
            profile(Disorder::SuicidalIdeation).first_person_boost
                >= profile(Disorder::Depression).first_person_boost
        );
    }
}
