//! Dataset export/import (TSV).
//!
//! Real benchmark suites ship their data as flat files; this module gives
//! the synthetic datasets the same shape so downstream users can export a
//! generated corpus, inspect or modify it, and load it back — or load their
//! *own* labelled TSV into the benchmark's `Dataset` type.
//!
//! Format: a header line `id<TAB>split<TAB>label<TAB>text`, one example per
//! line. Text is sanitized: tabs and newlines become spaces on export.

use crate::dataset::{Dataset, Example, Split};
use crate::taxonomy::Task;

/// Serialize a dataset to TSV.
pub fn to_tsv(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.examples.len() * 96);
    out.push_str("id\tsplit\tlabel\ttext\n");
    for e in &dataset.examples {
        let clean: String = e
            .text
            .chars()
            .map(|c| if c == '\t' || c == '\n' || c == '\r' { ' ' } else { c })
            .collect();
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            e.id,
            e.split.name(),
            dataset.task.labels[e.label],
            clean
        ));
    }
    out
}

/// Errors when parsing a TSV dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// Missing or malformed header.
    BadHeader,
    /// A data line had the wrong number of fields.
    BadLine(usize),
    /// Unknown split name.
    BadSplit(usize, String),
    /// Label not in the task's label set.
    UnknownLabel(usize, String),
    /// Id column was not an integer.
    BadId(usize),
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::BadHeader => write!(f, "missing/malformed TSV header"),
            TsvError::BadLine(n) => write!(f, "line {n}: wrong field count"),
            TsvError::BadSplit(n, s) => write!(f, "line {n}: unknown split {s:?}"),
            TsvError::UnknownLabel(n, l) => write!(f, "line {n}: unknown label {l:?}"),
            TsvError::BadId(n) => write!(f, "line {n}: id is not an integer"),
        }
    }
}

impl std::error::Error for TsvError {}

/// Parse a TSV dataset against a task definition. `name` becomes the
/// dataset's name; the task's label strings define valid labels.
pub fn from_tsv(tsv: &str, name: &'static str, task: Task) -> Result<Dataset, TsvError> {
    let mut lines = tsv.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim_end() == "id\tsplit\tlabel\ttext" => {}
        _ => return Err(TsvError::BadHeader),
    }
    let mut examples = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '\t').collect();
        if fields.len() != 4 {
            return Err(TsvError::BadLine(lineno + 1));
        }
        let id: u64 = fields[0].parse().map_err(|_| TsvError::BadId(lineno + 1))?;
        let split = match fields[1] {
            "train" => Split::Train,
            "val" => Split::Val,
            "test" => Split::Test,
            other => return Err(TsvError::BadSplit(lineno + 1, other.to_string())),
        };
        let label = task
            .label_index(fields[2])
            .ok_or_else(|| TsvError::UnknownLabel(lineno + 1, fields[2].to_string()))?;
        examples.push(Example {
            id,
            text: fields[3].to_string(),
            label,
            true_label: label, // external data: annotation is all we have
            split,
        });
    }
    Ok(Dataset { name, task, examples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_dataset, BuildConfig, DatasetId};

    fn task() -> Task {
        Task { name: "demo", description: "demo", labels: vec!["no", "yes"] }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = build_dataset(
            DatasetId::SdcnlS,
            &BuildConfig { seed: 4, scale: 0.05, label_noise: None },
        );
        let tsv = to_tsv(&d);
        let back = from_tsv(&tsv, "sdcnl-s", d.task.clone()).expect("parse ok");
        assert_eq!(back.examples.len(), d.examples.len());
        for (a, b) in d.examples.iter().zip(&back.examples) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.label, b.label);
            assert_eq!(a.split, b.split);
            assert_eq!(a.text, b.text);
        }
    }

    #[test]
    fn tabs_in_text_sanitized() {
        let d = Dataset {
            name: "x",
            task: task(),
            examples: vec![Example {
                id: 0,
                text: "a\tb\nc".into(),
                label: 1,
                true_label: 1,
                split: Split::Train,
            }],
        };
        let tsv = to_tsv(&d);
        let back = from_tsv(&tsv, "x", task()).expect("parse ok");
        assert_eq!(back.examples[0].text, "a b c");
    }

    #[test]
    fn header_required() {
        assert_eq!(from_tsv("nope\n", "x", task()).unwrap_err(), TsvError::BadHeader);
    }

    #[test]
    fn bad_rows_rejected_with_line_numbers() {
        let base = "id\tsplit\tlabel\ttext\n";
        let err = |tsv: String| from_tsv(&tsv, "x", task()).unwrap_err();
        assert_eq!(err(format!("{base}1\ttrain\tyes\n")), TsvError::BadLine(2));
        assert_eq!(
            err(format!("{base}1\tnope\tyes\thi\n")),
            TsvError::BadSplit(2, "nope".into())
        );
        assert_eq!(
            err(format!("{base}1\ttrain\tmaybe\thi\n")),
            TsvError::UnknownLabel(2, "maybe".into())
        );
        assert_eq!(err(format!("{base}x\ttrain\tyes\thi\n")), TsvError::BadId(2));
    }

    #[test]
    fn blank_lines_skipped() {
        let tsv = "id\tsplit\tlabel\ttext\n\n1\ttest\tyes\thello\n\n";
        let d = from_tsv(tsv, "x", task()).expect("parse ok");
        assert_eq!(d.examples.len(), 1);
        assert_eq!(d.examples[0].text, "hello");
    }
}
