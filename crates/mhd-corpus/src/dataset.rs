//! Dataset containers: examples, labelled datasets, and splits.

use crate::taxonomy::Task;

/// Which split an example belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Validation split.
    Val,
    /// Test split.
    Test,
}

impl Split {
    /// All splits, stable order.
    pub const ALL: [Split; 3] = [Split::Train, Split::Val, Split::Test];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Val => "val",
            Split::Test => "test",
        }
    }
}

/// One labelled post.
#[derive(Debug, Clone)]
pub struct Example {
    /// Stable unique id within the dataset.
    pub id: u64,
    /// Post text.
    pub text: String,
    /// Gold label: an index into the dataset task's label list. Note this is
    /// the (possibly noisy) *annotation*, which may differ from the true
    /// generating condition — exactly like the real datasets.
    pub label: usize,
    /// The underlying generating label before annotation noise (for
    /// diagnostics only; never shown to detectors).
    pub true_label: usize,
    /// Assigned split.
    pub split: Split,
}

/// A labelled dataset for one task.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Machine name ("dreaddit-s").
    pub name: &'static str,
    /// The classification task this dataset poses.
    pub task: Task,
    /// All examples across splits.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Approximate resident size in bytes (struct overhead plus text
    /// payloads), used by cache byte-budget accounting.
    pub fn approx_bytes(&self) -> usize {
        let per_example = std::mem::size_of::<Example>();
        std::mem::size_of::<Dataset>()
            + self.examples.iter().map(|e| per_example + e.text.capacity()).sum::<usize>()
    }

    /// Examples in a given split.
    pub fn split(&self, split: Split) -> Vec<&Example> {
        self.examples.iter().filter(|e| e.split == split).collect()
    }

    /// Number of examples in a split.
    pub fn split_len(&self, split: Split) -> usize {
        self.examples.iter().filter(|e| e.split == split).count()
    }

    /// Gold labels of a split, in split order.
    pub fn labels(&self, split: Split) -> Vec<usize> {
        self.split(split).iter().map(|e| e.label).collect()
    }

    /// Texts of a split, in split order.
    pub fn texts(&self, split: Split) -> Vec<&str> {
        self.split(split).iter().map(|e| e.text.as_str()).collect()
    }

    /// Per-class counts over the whole dataset.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.task.n_classes()];
        for e in &self.examples {
            counts[e.label] += 1;
        }
        counts
    }

    /// Fraction of examples whose annotation differs from the generating
    /// condition (realized label-noise rate).
    pub fn label_noise_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let noisy = self.examples.iter().filter(|e| e.label != e.true_label).count();
        noisy as f64 / self.examples.len() as f64
    }

    /// Mean post length in whitespace tokens.
    pub fn avg_tokens(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let total: usize = self.examples.iter().map(|e| e.text.split_whitespace().count()).sum();
        total as f64 / self.examples.len() as f64
    }

    /// Imbalance ratio: majority-class count / minority-class count.
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.class_counts();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let task = Task { name: "toy", description: "toy", labels: vec!["no", "yes"] };
        let mk = |id: u64, label: usize, true_label: usize, split: Split| Example {
            id,
            text: format!("post number {id}"),
            label,
            true_label,
            split,
        };
        Dataset {
            name: "toy",
            task,
            examples: vec![
                mk(0, 0, 0, Split::Train),
                mk(1, 1, 1, Split::Train),
                mk(2, 1, 0, Split::Val),
                mk(3, 0, 0, Split::Test),
                mk(4, 1, 1, Split::Test),
                mk(5, 0, 0, Split::Test),
            ],
        }
    }

    #[test]
    fn split_access() {
        let d = toy();
        assert_eq!(d.split_len(Split::Train), 2);
        assert_eq!(d.split_len(Split::Val), 1);
        assert_eq!(d.split_len(Split::Test), 3);
        assert_eq!(d.labels(Split::Test), vec![0, 1, 0]);
        assert_eq!(d.texts(Split::Val), vec!["post number 2"]);
    }

    #[test]
    fn class_counts_and_imbalance() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![3, 3]);
        assert!((d.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_noise_detected() {
        let d = toy();
        assert!((d.label_noise_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn avg_tokens_positive() {
        assert!(toy().avg_tokens() > 0.0);
    }

    #[test]
    fn split_names() {
        assert_eq!(Split::Train.name(), "train");
        assert_eq!(Split::ALL.len(), 3);
    }
}
