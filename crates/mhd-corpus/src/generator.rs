//! Template-based synthetic post generation.
//!
//! A post is a sequence of sentences. Each sentence is either *signal*
//! (drawn from the condition's [`SignalProfile`] category mixture and
//! realized from a category-specific template pool) or *filler* (neutral
//! everyday content drawn from a disjoint vocabulary). Severity scales the
//! signal fraction and injects intensifiers; comorbidity mixes in a
//! secondary condition's signal. Style switches between Reddit-post and
//! tweet length regimes.
//!
//! The template slots are filled from the **same lexicon word lists** the
//! feature extractors use (see the crate docs for why this mirrors the real
//! datasets' construction), with per-category connector phrasing so the text
//! reads plausibly and carries realistic surface statistics.

use crate::signal::{profile, SignalProfile};
use crate::taxonomy::{Disorder, Severity};
use mhd_text::lexicon::{category_words, LexiconCategory as C};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Surface style of the generated post.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Style {
    /// Long-form (Reddit-like): 5–12 sentences.
    RedditPost,
    /// Short-form (Twitter-like): 1–3 sentences, occasional hashtags.
    Tweet,
}

/// Full specification of one post to generate.
#[derive(Debug, Clone, Copy)]
pub struct PostSpec {
    /// Primary condition expressed in the post.
    pub disorder: Disorder,
    /// Severity of the primary condition.
    pub severity: Severity,
    /// Optional comorbid condition contributing ~30% of signal sentences.
    pub secondary: Option<Disorder>,
    /// Length/format regime.
    pub style: Style,
}

impl PostSpec {
    /// A moderate-severity, no-comorbidity Reddit-style post.
    pub fn simple(disorder: Disorder) -> Self {
        PostSpec { disorder, severity: Severity::Moderate, secondary: None, style: Style::RedditPost }
    }
}

/// Sentence templates per lexicon category. `{w}` slots are filled with a
/// sampled word from that category; `{n}` with a small number.
fn templates(cat: C) -> &'static [&'static str] {
    match cat {
        C::Sadness => &[
            "i feel so {w} all the time",
            "everything just feels {w} lately",
            "i have been {w} for weeks now",
            "there is this {w} feeling that never leaves",
            "woke up {w} again for no reason",
            "i can't shake this {w} weight on my chest",
            "it's like i'm {w} inside and nobody notices",
            "the {w} gets worse every single day",
        ],
        C::Death => &[
            "i keep thinking about {w}",
            "sometimes i just want to {w}",
            "i wrote a note about {w} last night",
            "everyone would be better off if i was {w}",
            "i looked up ways to {w} again",
            "the thoughts about {w} won't stop",
            "i feel like such a {w} to my family",
            "part of me just wants to {w} quietly",
        ],
        C::Anxiety => &[
            "i am so {w} about everything",
            "my mind keeps {w} at night",
            "i had another {w} attack at the store",
            "i can't stop {w} about tomorrow",
            "this constant {w} is wearing me down",
            "even small things leave me {w}",
            "been {w} all week and i don't know why",
            "the {w} hits the second i wake up",
        ],
        C::Anger => &[
            "i got so {w} over nothing today",
            "i keep {w} at the people i love",
            "this {w} inside me scares me",
            "i snapped and started {w} again",
            "everything makes me {w} lately",
        ],
        C::NegativeEmotion => &[
            "honestly everything feels {w}",
            "i feel {w} about who i've become",
            "it's been a {w} month",
            "i'm so {w} with myself",
            "things have been pretty {w} if i'm honest",
        ],
        C::PositiveEmotion => &[
            "feeling really {w} today",
            "had a {w} time with everyone",
            "honestly so {w} about how things are going",
            "small things make me {w} lately",
            "what a {w} weekend that was",
        ],
        C::Sleep => &[
            "i haven't {w} properly in {n} days",
            "another night of being {w} until 4am",
            "i'm {w} no matter how long i rest",
            "the {w} is ruining my mornings",
            "can't remember the last time i felt {w} instead of drained",
            "i keep having {w} when i finally drift off",
        ],
        C::Cognition => &[
            "i can't {w} on anything anymore",
            "my {w} feels foggy all day",
            "i keep {w} the same conversation over and over",
            "i don't {w} why i feel this way",
            "hard to {w} even simple decisions now",
        ],
        C::Absolutist => &[
            "it is {w} going to be like this",
            "{w} ever gets better for me",
            "i ruin {w} i touch",
            "this happens {w} single time",
            "i am {w} the problem",
        ],
        C::Social => &[
            "my {w} doesn't understand what i'm going through",
            "i feel so {w} even in a crowded room",
            "i stopped answering my {w} weeks ago",
            "had a fight with my {w} again",
            "everyone has {w} except me",
            "i miss talking to my {w}",
        ],
        C::Body => &[
            "my {w} has been killing me all week",
            "constant {w} and no doctor can explain it",
            "my heart starts {w} out of nowhere",
            "i feel {w} every time i stand up",
            "the {w} in my chest won't go away",
        ],
        C::Work => &[
            "my {w} keeps piling on more and more",
            "another {w} due and i haven't started",
            "i might lose my {w} if this continues",
            "the {w} this semester is crushing me",
            "worked a double {w} again yesterday",
            "my {w} yelled at me in front of everyone",
        ],
        C::Money => &[
            "i can't pay {w} this month",
            "the {w} keeps growing no matter what i do",
            "i'm completely {w} until payday",
            "got another notice about my {w}",
            "don't know how i'll {w} groceries this week",
        ],
        C::Trauma => &[
            "had another {w} in the middle of the day",
            "the {w} came back the moment i heard that sound",
            "i keep {w} what happened that night",
            "loud noises leave me {w} for hours",
            "my therapist says it's the {w} talking",
            "i still can't drive past where the {w} happened",
        ],
        C::Eating => &[
            "i counted {w} three times today",
            "i {w} again last night and hate myself for it",
            "skipped {w} again to feel in control",
            "i can't look in the {w} anymore",
            "spent an hour on the {w} this morning",
            "everyone keeps commenting on how {w} i look",
        ],
        C::Mania => &[
            "i feel absolutely {w} right now, like nothing can stop me",
            "stayed {w} for two days straight working on my ideas",
            "went on a {w} and spent my whole paycheck",
            "my thoughts are {w} faster than i can type",
            "i have {n} new {w} and i'm starting all of them tonight",
            "last week i was on top of the world, now i just {w}",
        ],
        C::Treatment => &[
            "my {w} changed my dose again",
            "started seeing a new {w} last month",
            "the {w} makes me feel flat but stable",
            "thinking about calling the {w} tonight",
            "skipped my {w} appointment again",
        ],
        C::FirstPerson => &["i keep asking {w} what is wrong with me"],
    }
}

/// Neutral everyday filler sentences — vocabulary disjoint from the signal
/// lexicons, providing the noise floor every method must see through.
const FILLER: &[&str] = &[
    "watched a couple episodes of that new show tonight",
    "the weather has been pretty average around here",
    "tried a new pasta recipe for dinner yesterday",
    "my phone update changed all the icons again",
    "traffic on the commute was slow as usual",
    "thinking about repainting the kitchen next month",
    "the neighbours got a new puppy recently",
    "finally fixed the squeaky door in the hallway",
    "picked up some groceries on the way home",
    "the game last night went into overtime",
    "been rewatching old movies on the weekend",
    "planted some herbs on the balcony",
    "the bus was late again this morning",
    "found a decent coffee place near the station",
    "my laptop fan is getting loud, might clean it",
    "the library extended its opening hours",
    "went for a short walk around the block",
    "the printer at home ran out of ink",
    "caught up on some podcasts while cleaning",
    "the elevator in our building is finally repaired",
    "tried assembling that shelf from the store",
    "the local market had a discount on fruit",
    "my plants needed watering twice this week",
    "someone parked in my spot again",
    "updated my resume a little over the weekend",
];

/// Intensifiers injected at high severity.
const INTENSIFIERS: &[&str] = &["really", "so", "completely", "absolutely", "utterly"];

/// Hashtags appended to tweets, keyed loosely by condition.
fn hashtags(d: Disorder) -> &'static [&'static str] {
    match d {
        Disorder::Depression => &["#depression", "#mentalhealth", "#alone"],
        Disorder::Anxiety => &["#anxiety", "#overthinking", "#mentalhealth"],
        Disorder::Stress => &["#stressed", "#burnout", "#work"],
        Disorder::Ptsd => &["#ptsd", "#trauma", "#recovery"],
        Disorder::Bipolar => &["#bipolar", "#manic", "#mentalhealth"],
        Disorder::SuicidalIdeation => &["#alone", "#darkthoughts", "#mentalhealth"],
        Disorder::EatingDisorder => &["#edrecovery", "#bodyimage", "#food"],
        Disorder::Control => &["#weekend", "#coffee", "#life"],
    }
}

/// The post generator. Stateless apart from the lexicon; all randomness
/// comes from the caller-supplied RNG, keeping generation reproducible.
#[derive(Debug, Clone, Default)]
pub struct Generator;

impl Generator {
    /// Create a generator.
    pub fn new() -> Self {
        Generator
    }

    /// Generate one post for `spec` using `rng`.
    pub fn generate(&self, spec: &PostSpec, rng: &mut StdRng) -> String {
        let primary = profile(spec.disorder);
        // Signal fraction: (1 - filler_floor) scaled by severity intensity.
        let base = 1.0 - primary.filler_floor;
        let p_signal = (base * spec.severity.intensity()).clamp(0.0, 0.92);
        // Control posts use their (positive/neutral) profile at a fixed rate
        // regardless of the severity knob, which doesn't apply to them.
        let p_signal = if spec.disorder == Disorder::Control { base } else { p_signal };
        self.generate_inner(&primary, spec.secondary.map(profile).as_ref(), p_signal, spec.severity, spec.style, rng)
    }

    /// Generate a post directly from a custom [`SignalProfile`] — used by
    /// dataset builders whose classes are not plain disorders (stressor
    /// causes, suicide-risk grades).
    pub fn generate_from_profile(
        &self,
        prof: &SignalProfile,
        severity: Severity,
        style: Style,
        rng: &mut StdRng,
    ) -> String {
        let base = 1.0 - prof.filler_floor;
        let p_signal = (base * severity.intensity().max(0.6)).clamp(0.0, 0.92);
        self.generate_inner(prof, None, p_signal, severity, style, rng)
    }

    fn generate_inner(
        &self,
        primary: &SignalProfile,
        secondary: Option<&SignalProfile>,
        p_signal: f64,
        severity: Severity,
        style: Style,
        rng: &mut StdRng,
    ) -> String {
        let n_sentences = match style {
            Style::RedditPost => rng.gen_range(5..=12),
            Style::Tweet => rng.gen_range(1..=3),
        };
        let mut sentences = Vec::with_capacity(n_sentences);
        for _ in 0..n_sentences {
            let is_signal = rng.gen_bool(p_signal);
            let sentence = if is_signal {
                // Guard order mirrors the old `is_some() && gen_bool(..) && ..`
                // chain so the RNG stream (and thus every corpus) is unchanged.
                let prof = match secondary {
                    Some(sec) if rng.gen_bool(0.3) && primary.disorder != Disorder::Control => sec,
                    _ => primary,
                };
                self.signal_sentence(prof, severity, rng)
            } else {
                // mhd-lint: allow(R6) — FILLER is a non-empty const array
                FILLER.choose(rng).expect("filler non-empty").to_string()
            };
            sentences.push(sentence);
        }
        // First-person pressure: prepend an I-statement opener sometimes.
        if primary.first_person_boost > 0.0 && rng.gen_bool(primary.first_person_boost.min(0.9)) {
            sentences.insert(0, "i don't usually post here but i need to get this out".to_string());
        }
        let mut text = join_sentences(&sentences, rng);
        if style == Style::Tweet && rng.gen_bool(0.5) {
            // mhd-lint: allow(R6) — hashtags() returns a non-empty const slice for every disorder
            let tag = hashtags(primary.disorder).choose(rng).expect("tags non-empty");
            text.push(' ');
            text.push_str(tag);
        }
        text
    }

    /// Realize one signal sentence from a profile.
    fn signal_sentence(&self, prof: &SignalProfile, severity: Severity, rng: &mut StdRng) -> String {
        let cat = sample_category(prof, rng);
        let pool = templates(cat);
        // mhd-lint: allow(R6) — templates() returns a non-empty const slice for every category
        let template = pool.choose(rng).expect("template pool non-empty");
        let mut sentence = String::with_capacity(template.len() + 16);
        let mut rest = *template;
        while let Some(pos) = rest.find('{') {
            sentence.push_str(&rest[..pos]);
            // mhd-lint: allow(R6) — template tables are const and brace-balanced; pinned by the template tests
            let close = rest[pos..].find('}').expect("balanced template braces") + pos;
            match &rest[pos + 1..close] {
                "w" => {
                    // mhd-lint: allow(R6) — category_words() returns a non-empty const slice for every category
                    let word = category_words(cat).choose(rng).expect("category words non-empty");
                    sentence.push_str(word);
                }
                "n" => {
                    let n: u32 = rng.gen_range(2..=9);
                    sentence.push_str(&n.to_string());
                }
                // mhd-lint: allow(R6) — const template tables only use {w}/{n}; a new slot must fail loudly in tests
                other => panic!("unknown template slot {{{other}}}"),
            }
            rest = &rest[close + 1..];
        }
        sentence.push_str(rest);
        // Severe posts pick up intensifiers ("i feel so utterly empty").
        if severity == Severity::Severe && rng.gen_bool(0.45) {
            // mhd-lint: allow(R6) — INTENSIFIERS is a non-empty const array
            let intensifier = INTENSIFIERS.choose(rng).expect("non-empty");
            if let Some(pos) = sentence.find(" feel ") {
                sentence.insert_str(pos + 6, &format!("{intensifier} "));
            } else {
                sentence.push_str(&format!(", {intensifier}"));
            }
        }
        sentence
    }
}

fn sample_category(prof: &SignalProfile, rng: &mut StdRng) -> C {
    let total = prof.total_weight();
    let mut draw = rng.gen_range(0.0..total);
    for &(cat, w) in &prof.category_weights {
        if draw < w {
            return cat;
        }
        draw -= w;
    }
    // mhd-lint: allow(R6) — every built-in SignalProfile carries at least one category weight
    prof.category_weights.last().expect("non-empty").0
}

/// Join sentences with varied punctuation and occasional lowercase run-ons,
/// mimicking social-media style.
fn join_sentences(sentences: &[String], rng: &mut StdRng) -> String {
    let mut out = String::new();
    for (i, s) in sentences.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(s);
        let roll: f64 = rng.gen();
        if roll < 0.72 {
            out.push('.');
        } else if roll < 0.82 {
            out.push_str("...");
        } else if roll < 0.9 {
            // run-on: no terminator
        } else {
            out.push('!');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_text::lexicon::Lexicon;
    use mhd_text::tokenize::words;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Generator::new();
        let spec = PostSpec::simple(Disorder::Depression);
        let a = g.generate(&spec, &mut rng(7));
        let b = g.generate(&spec, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = Generator::new();
        let spec = PostSpec::simple(Disorder::Depression);
        assert_ne!(g.generate(&spec, &mut rng(1)), g.generate(&spec, &mut rng(2)));
    }

    #[test]
    fn depression_posts_carry_sadness_signal() {
        let g = Generator::new();
        let lex = Lexicon::standard();
        let spec = PostSpec::simple(Disorder::Depression);
        let mut r = rng(42);
        let mut sad_total = 0u32;
        for _ in 0..50 {
            let text = g.generate(&spec, &mut r);
            let toks = words(&text);
            sad_total += lex.profile(&toks).count(mhd_text::lexicon::LexiconCategory::Sadness);
        }
        assert!(sad_total > 25, "expected sadness signal, got {sad_total}");
    }

    #[test]
    fn control_posts_lack_death_signal() {
        let g = Generator::new();
        let lex = Lexicon::standard();
        let spec = PostSpec::simple(Disorder::Control);
        let mut r = rng(42);
        let mut death = 0u32;
        for _ in 0..50 {
            let text = g.generate(&spec, &mut r);
            death += lex.profile(&words(&text)).count(mhd_text::lexicon::LexiconCategory::Death);
        }
        assert!(death <= 2, "control posts should not discuss death, got {death}");
    }

    #[test]
    fn severity_scales_signal() {
        let g = Generator::new();
        let lex = Lexicon::standard();
        let count_neg = |sev: Severity, seed: u64| {
            let spec = PostSpec { disorder: Disorder::Depression, severity: sev, secondary: None, style: Style::RedditPost };
            let mut r = rng(seed);
            let mut total = 0u32;
            for _ in 0..60 {
                let text = g.generate(&spec, &mut r);
                let p = lex.profile(&words(&text));
                total += p.count(mhd_text::lexicon::LexiconCategory::Sadness)
                    + p.count(mhd_text::lexicon::LexiconCategory::NegativeEmotion);
            }
            total
        };
        assert!(count_neg(Severity::Severe, 3) > count_neg(Severity::Mild, 3));
    }

    #[test]
    fn tweets_are_shorter() {
        let g = Generator::new();
        let mut r = rng(5);
        let reddit: usize = (0..30)
            .map(|_| {
                g.generate(&PostSpec::simple(Disorder::Anxiety), &mut r).len()
            })
            .sum();
        let tweet_spec = PostSpec { style: Style::Tweet, ..PostSpec::simple(Disorder::Anxiety) };
        let tweets: usize = (0..30).map(|_| g.generate(&tweet_spec, &mut r).len()).sum();
        assert!(reddit > tweets * 2, "reddit={reddit} tweets={tweets}");
    }

    #[test]
    fn comorbidity_mixes_secondary_signal() {
        let g = Generator::new();
        let lex = Lexicon::standard();
        let spec = PostSpec {
            disorder: Disorder::Depression,
            severity: Severity::Severe,
            secondary: Some(Disorder::Anxiety),
            style: Style::RedditPost,
        };
        let mut r = rng(11);
        let mut anx = 0u32;
        for _ in 0..60 {
            let text = g.generate(&spec, &mut r);
            anx += lex.profile(&words(&text)).count(mhd_text::lexicon::LexiconCategory::Anxiety);
        }
        assert!(anx > 5, "secondary anxiety signal should leak through, got {anx}");
    }

    #[test]
    fn all_disorders_generate_without_panic() {
        let g = Generator::new();
        let mut r = rng(99);
        for &d in &Disorder::ALL {
            for &s in &Severity::ALL {
                for style in [Style::RedditPost, Style::Tweet] {
                    let spec = PostSpec { disorder: d, severity: s, secondary: None, style };
                    let text = g.generate(&spec, &mut r);
                    assert!(!text.is_empty());
                }
            }
        }
    }

    #[test]
    fn templates_have_balanced_braces() {
        use mhd_text::lexicon::LexiconCategory;
        for &cat in &LexiconCategory::ALL {
            for t in templates(cat) {
                assert_eq!(
                    t.matches('{').count(),
                    t.matches('}').count(),
                    "unbalanced braces in template: {t}"
                );
            }
        }
    }
}
