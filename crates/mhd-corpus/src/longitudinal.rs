//! Longitudinal user timelines — the user-level detection setting.
//!
//! The post-level datasets treat each post independently, but a major strand
//! of the surveyed literature (the CLPsych shared tasks, eRisk) labels
//! *users*: given a user's posting history, detect whether they are at risk,
//! and how early. This module generates user timelines:
//!
//! - each [`UserTimeline`] is a sequence of posts ordered by day;
//! - control users emit everyday content throughout;
//! - condition users have an *onset day*; posts before onset look like
//!   control posts, posts after onset carry condition signal that ramps up
//!   with time since onset (prodrome → acute);
//! - the user-level gold label is the condition (control vs condition),
//!   plus the onset day for early-detection scoring.

use crate::generator::{Generator, PostSpec, Style};
use crate::taxonomy::{Disorder, Severity};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One post in a timeline.
#[derive(Debug, Clone)]
pub struct TimelinePost {
    /// Day index since the start of observation.
    pub day: u32,
    /// Post text.
    pub text: String,
}

/// A user's posting history with a user-level label.
#[derive(Debug, Clone)]
pub struct UserTimeline {
    /// Stable user id.
    pub user_id: u64,
    /// Gold condition (`Control` for healthy users).
    pub condition: Disorder,
    /// Day the condition began expressing in posts (`None` for controls).
    pub onset_day: Option<u32>,
    /// Posts in day order.
    pub posts: Vec<TimelinePost>,
}

impl UserTimeline {
    /// Is the user a (positive) condition user?
    pub fn is_positive(&self) -> bool {
        self.condition != Disorder::Control
    }

    /// Posts visible up to (and including) `day` — the early-detection view.
    pub fn posts_until(&self, day: u32) -> Vec<&TimelinePost> {
        self.posts.iter().filter(|p| p.day <= day).collect()
    }

    /// Last observation day.
    pub fn last_day(&self) -> u32 {
        self.posts.last().map(|p| p.day).unwrap_or(0)
    }
}

/// Configuration for timeline generation.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Number of condition users.
    pub n_positive: usize,
    /// Number of control users.
    pub n_control: usize,
    /// The condition positive users develop.
    pub condition: Disorder,
    /// Observation window in days.
    pub n_days: u32,
    /// Mean posts per user over the window.
    pub mean_posts: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            n_positive: 40,
            n_control: 60,
            condition: Disorder::Depression,
            n_days: 60,
            mean_posts: 20.0,
            seed: 42,
        }
    }
}

/// Generate a cohort of user timelines.
pub fn generate_cohort(config: &TimelineConfig) -> Vec<UserTimeline> {
    assert!(config.n_days > 4, "observation window too short");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let generator = Generator::new();
    let mut cohort = Vec::with_capacity(config.n_positive + config.n_control);
    let memberships = [true]
        .iter()
        .cycle()
        .take(config.n_positive)
        .chain([false].iter().cycle().take(config.n_control));
    for (user_id, &positive) in (0u64..).zip(memberships) {
        let condition = if positive { config.condition } else { Disorder::Control };
        // Onset somewhere in the first two-thirds of the window so there is
        // post-onset signal to find.
        let onset_day =
            positive.then(|| rng.gen_range(config.n_days / 6..config.n_days * 2 / 3));
        let n_posts = sample_post_count(config.mean_posts, &mut rng);
        let mut days: Vec<u32> = (0..n_posts).map(|_| rng.gen_range(0..config.n_days)).collect();
        days.sort_unstable();
        let posts = days
            .into_iter()
            .map(|day| {
                let severity = severity_at(day, onset_day);
                let disorder = if severity == Severity::None { Disorder::Control } else { condition };
                let spec = PostSpec { disorder, severity, secondary: None, style: Style::RedditPost };
                TimelinePost { day, text: generator.generate(&spec, &mut rng) }
            })
            .collect();
        cohort.push(UserTimeline { user_id, condition, onset_day, posts });
    }
    cohort
}

/// Severity of condition expression on `day` given the onset: none before
/// onset, mild in the first two weeks (prodrome), moderate after, severe
/// from six weeks post-onset.
fn severity_at(day: u32, onset: Option<u32>) -> Severity {
    match onset {
        None => Severity::None,
        Some(o) if day < o => Severity::None,
        Some(o) => {
            let elapsed = day - o;
            if elapsed < 14 {
                Severity::Mild
            } else if elapsed < 42 {
                Severity::Moderate
            } else {
                Severity::Severe
            }
        }
    }
}

/// Poisson-ish post count via a geometric-sum approximation (keeps the
/// dependency surface at `rand` only), clamped to at least 3 posts.
fn sample_post_count(mean: f64, rng: &mut StdRng) -> usize {
    let jitter: f64 = rng.gen_range(0.5..1.5);
    ((mean * jitter).round() as usize).max(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_text::lexicon::{Lexicon, LexiconCategory};
    use mhd_text::tokenize::words;

    fn cfg() -> TimelineConfig {
        TimelineConfig { n_positive: 10, n_control: 10, mean_posts: 12.0, ..Default::default() }
    }

    #[test]
    fn cohort_sizes_and_labels() {
        let cohort = generate_cohort(&cfg());
        assert_eq!(cohort.len(), 20);
        let positives = cohort.iter().filter(|u| u.is_positive()).count();
        assert_eq!(positives, 10);
        for u in &cohort {
            assert!(u.posts.len() >= 3);
            assert_eq!(u.is_positive(), u.onset_day.is_some());
            // Posts sorted by day.
            for w in u.posts.windows(2) {
                assert!(w[0].day <= w[1].day);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_cohort(&cfg());
        let b = generate_cohort(&cfg());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].posts[0].text, b[0].posts[0].text);
    }

    #[test]
    fn pre_onset_posts_look_like_control() {
        let cohort = generate_cohort(&TimelineConfig {
            n_positive: 15,
            n_control: 0,
            mean_posts: 25.0,
            ..Default::default()
        });
        let lex = Lexicon::standard();
        let mut pre_sad = 0u32;
        let mut post_sad = 0u32;
        let mut pre_n = 0u32;
        let mut post_n = 0u32;
        for u in &cohort {
            let onset = u.onset_day.expect("positive user");
            for p in &u.posts {
                let count = lex.profile(&words(&p.text)).count(LexiconCategory::Sadness);
                if p.day < onset {
                    pre_sad += count;
                    pre_n += 1;
                } else {
                    post_sad += count;
                    post_n += 1;
                }
            }
        }
        let pre_rate = pre_sad as f64 / pre_n.max(1) as f64;
        let post_rate = post_sad as f64 / post_n.max(1) as f64;
        assert!(
            post_rate > pre_rate * 3.0,
            "onset must flip the signal: pre {pre_rate:.3} post {post_rate:.3}"
        );
    }

    #[test]
    fn posts_until_filters_by_day() {
        let cohort = generate_cohort(&cfg());
        let u = &cohort[0];
        let mid = u.last_day() / 2;
        let early = u.posts_until(mid);
        assert!(early.len() <= u.posts.len());
        assert!(early.iter().all(|p| p.day <= mid));
        assert_eq!(u.posts_until(u.last_day()).len(), u.posts.len());
    }

    #[test]
    fn severity_ramp() {
        assert_eq!(severity_at(5, None), Severity::None);
        assert_eq!(severity_at(5, Some(10)), Severity::None);
        assert_eq!(severity_at(12, Some(10)), Severity::Mild);
        assert_eq!(severity_at(30, Some(10)), Severity::Moderate);
        assert_eq!(severity_at(60, Some(10)), Severity::Severe);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn short_window_rejected() {
        generate_cohort(&TimelineConfig { n_days: 2, ..cfg() });
    }
}
