//! Disorder taxonomy, severities and detection tasks.

use std::fmt;

/// Mental-health conditions modelled by the benchmark.
///
/// `Control` denotes posts with no clinical signal (everyday content); it is
/// the negative class of the binary tasks and the majority class of the
/// triage tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Disorder {
    /// No clinical signal; everyday content.
    Control,
    /// Major-depression-like language.
    Depression,
    /// Generalized-anxiety-like language.
    Anxiety,
    /// Acute stress (the Dreaddit construct — situational stressors).
    Stress,
    /// Post-traumatic stress language.
    Ptsd,
    /// Bipolar / mania-episode language.
    Bipolar,
    /// Active suicidal ideation.
    SuicidalIdeation,
    /// Eating-disorder language.
    EatingDisorder,
}

impl Disorder {
    /// Every condition, stable order.
    pub const ALL: [Disorder; 8] = [
        Disorder::Control,
        Disorder::Depression,
        Disorder::Anxiety,
        Disorder::Stress,
        Disorder::Ptsd,
        Disorder::Bipolar,
        Disorder::SuicidalIdeation,
        Disorder::EatingDisorder,
    ];

    /// Canonical lowercase label string (what prompts and parsers use).
    pub fn label(self) -> &'static str {
        match self {
            Disorder::Control => "control",
            Disorder::Depression => "depression",
            Disorder::Anxiety => "anxiety",
            Disorder::Stress => "stress",
            Disorder::Ptsd => "ptsd",
            Disorder::Bipolar => "bipolar",
            Disorder::SuicidalIdeation => "suicidal ideation",
            Disorder::EatingDisorder => "eating disorder",
        }
    }
}

impl fmt::Display for Disorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Severity grades used by the ordinal tasks (DepSeverity / CSSRS style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// No symptoms.
    None,
    /// Subclinical / mild symptoms.
    Mild,
    /// Clear clinical signal.
    Moderate,
    /// Severe, pervasive signal.
    Severe,
}

impl Severity {
    /// All grades, ascending.
    pub const ALL: [Severity; 4] =
        [Severity::None, Severity::Mild, Severity::Moderate, Severity::Severe];

    /// 0..=3 ordinal value.
    pub fn ordinal(self) -> usize {
        match self {
            Severity::None => 0,
            Severity::Mild => 1,
            Severity::Moderate => 2,
            Severity::Severe => 3,
        }
    }

    /// Signal intensity multiplier used by the generator.
    pub(crate) fn intensity(self) -> f64 {
        match self {
            Severity::None => 0.0,
            Severity::Mild => 0.45,
            Severity::Moderate => 1.0,
            Severity::Severe => 1.7,
        }
    }

    /// Canonical label string.
    pub fn label(self) -> &'static str {
        match self {
            Severity::None => "minimum",
            Severity::Mild => "mild",
            Severity::Moderate => "moderate",
            Severity::Severe => "severe",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The detection task a dataset poses. Tasks define the label vocabulary a
/// detector must choose from; labels are indices into [`Task::labels`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    /// Short machine name ("stress_binary").
    pub name: &'static str,
    /// Human instruction fragment ("whether the poster suffers from stress").
    pub description: &'static str,
    /// Ordered label strings; a prediction is an index into this slice.
    pub labels: Vec<&'static str>,
}

impl Task {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.labels.len()
    }

    /// Index of a label string (exact match).
    pub fn label_index(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|&l| l == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = Disorder::ALL.iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Disorder::ALL.len());
    }

    #[test]
    fn severity_ordinal_ascending() {
        for w in Severity::ALL.windows(2) {
            assert!(w[0].ordinal() < w[1].ordinal());
            assert!(w[0].intensity() < w[1].intensity());
        }
        assert_eq!(Severity::None.intensity(), 0.0);
    }

    #[test]
    fn task_label_lookup() {
        let t = Task {
            name: "demo",
            description: "demo task",
            labels: vec!["no", "yes"],
        };
        assert_eq!(t.n_classes(), 2);
        assert_eq!(t.label_index("yes"), Some(1));
        assert_eq!(t.label_index("maybe"), None);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Disorder::SuicidalIdeation.to_string(), "suicidal ideation");
        assert_eq!(Severity::Severe.to_string(), "severe");
    }
}
