//! Dataset registry and cards (Table T1 source).

use crate::builders::{build_dataset, BuildConfig, DatasetId};
use crate::dataset::{Dataset, Split};

/// Summary card for one dataset — the row shape of Table T1.
#[derive(Debug, Clone)]
pub struct DatasetCard {
    /// Machine name.
    pub name: &'static str,
    /// Task name.
    pub task: &'static str,
    /// Number of classes.
    pub n_classes: usize,
    /// Class label strings.
    pub labels: Vec<&'static str>,
    /// Total examples.
    pub n_examples: usize,
    /// Per-split sizes (train, val, test).
    pub split_sizes: (usize, usize, usize),
    /// Per-class counts.
    pub class_counts: Vec<usize>,
    /// Majority/minority imbalance ratio.
    pub imbalance: f64,
    /// Mean tokens per post.
    pub avg_tokens: f64,
    /// Realized annotation-noise rate.
    pub label_noise: f64,
}

impl DatasetCard {
    /// Compute a card from a built dataset.
    pub fn of(d: &Dataset) -> DatasetCard {
        DatasetCard {
            name: d.name,
            task: d.task.name,
            n_classes: d.task.n_classes(),
            labels: d.task.labels.clone(),
            n_examples: d.examples.len(),
            split_sizes: (
                d.split_len(Split::Train),
                d.split_len(Split::Val),
                d.split_len(Split::Test),
            ),
            class_counts: d.class_counts(),
            imbalance: d.imbalance_ratio(),
            avg_tokens: d.avg_tokens(),
            label_noise: d.label_noise_rate(),
        }
    }
}

/// All benchmark dataset ids.
pub fn all_dataset_ids() -> [DatasetId; 7] {
    DatasetId::ALL
}

/// Build a dataset by id with the given config.
pub fn build(id: DatasetId, config: &BuildConfig) -> Dataset {
    build_dataset(id, config)
}

/// Build every dataset and return its card (Table T1 rows).
pub fn cards(config: &BuildConfig) -> Vec<DatasetCard> {
    DatasetId::ALL.iter().map(|&id| DatasetCard::of(&build(id, config))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cards_cover_all_datasets() {
        let cfg = BuildConfig { seed: 1, scale: 0.1, label_noise: None };
        let cards = cards(&cfg);
        assert_eq!(cards.len(), 7);
        for c in &cards {
            assert_eq!(c.n_classes, c.labels.len());
            assert_eq!(c.n_examples, c.class_counts.iter().sum::<usize>());
            let (tr, va, te) = c.split_sizes;
            assert_eq!(tr + va + te, c.n_examples);
            assert!(c.avg_tokens > 0.0);
            assert!(c.imbalance >= 1.0);
        }
    }

    #[test]
    fn card_matches_dataset() {
        let cfg = BuildConfig { seed: 1, scale: 0.1, label_noise: None };
        let d = build(DatasetId::DreadditS, &cfg);
        let c = DatasetCard::of(&d);
        assert_eq!(c.name, "dreaddit-s");
        assert_eq!(c.task, "stress_binary");
        assert_eq!(c.n_examples, d.examples.len());
    }
}
